//! Per-stage span timing: the latency truth plane's recording layer.
//!
//! A tuple's real sojourn spans TCP read, frame decode, admission, SPSC
//! ring residency, and worker execution — none of which the controller's
//! virtual-queue mean can attribute. This module gives every pipeline
//! thread a **cache-padded, lock-free recorder** ([`SpanHandle`]) over a
//! fixed stage enum ([`Stage`]), all registered in a [`SpanRegistry`]
//! the obs plane drains into a [`ProfileSnapshot`] (merged
//! [`Histo`](crate::histo::Histo)s, per-stage shares, percentile
//! tables, Prometheus histogram families, and the `/profile` endpoint).
//!
//! ## Sampling
//!
//! Per-tuple end-to-end sojourn is tracked on a sampled basis: the
//! front door marks roughly every `sample_every`-th tuple (default
//! [`DEFAULT_SAMPLE_EVERY`] = 64) by setting [`SAMPLE_BIT`] — bit 63 —
//! in the tuple's ring stamp. Stamps are nanoseconds since the engine
//! epoch, which stays below 2⁶³ for ~292 years, so the bit is free. The
//! worker detects the bit at retirement, strips it before any delay
//! arithmetic, and closes the span: `ring_wait` (stamp → batch start),
//! `execute` (batch start → retirement), and the end-to-end sojourn.
//! At 1/64 sampling the record path adds a handful of relaxed atomic
//! increments per 64 tuples — unmeasurable next to a ring push.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histo::{AtomicHisto, Histo};
use crate::telemetry::PromText;

/// Bit 63 of a ring stamp marks a sampled tuple. Stamps are ns since
/// the engine epoch (< 2⁶³ for centuries), so the bit never collides
/// with real time.
pub const SAMPLE_BIT: u64 = 1 << 63;

/// Default sojourn sampling rate: one tuple in 64.
pub const DEFAULT_SAMPLE_EVERY: u32 = 64;

/// The fixed pipeline stage enum. Order matches a tuple's path through
/// the system: socket read, frame decode, admission (shed + ring push),
/// ring residency, operator execution, backpressure reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Reading bytes off the socket into the connection buffer.
    NetRead = 0,
    /// Decoding wire frames (header + survivor keys).
    Decode = 1,
    /// The front-door pass: entry shed + ring reservation.
    Admission = 2,
    /// Time spent queued in the SPSC ring before a worker pops.
    RingWait = 3,
    /// Operator execution at the worker.
    Execute = 4,
    /// Serialising and enqueueing the backpressure reply.
    Reply = 5,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 6;

    /// All stages, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::NetRead,
        Stage::Decode,
        Stage::Admission,
        Stage::RingWait,
        Stage::Execute,
        Stage::Reply,
    ];

    /// Stable snake_case name (Prometheus label / JSON key).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::NetRead => "net_read",
            Stage::Decode => "decode",
            Stage::Admission => "admission",
            Stage::RingWait => "ring_wait",
            Stage::Execute => "execute",
            Stage::Reply => "reply",
        }
    }

    /// Array index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the stage burns CPU (everything except ring residency,
    /// which is pure queueing delay).
    pub fn is_cpu(self) -> bool {
        !matches!(self, Stage::RingWait)
    }
}

/// One thread's recorder storage: a histogram per stage plus the
/// end-to-end sojourn histogram, cache-line aligned so two recording
/// threads never false-share a slot boundary.
#[repr(align(64))]
struct Slot {
    label: String,
    stages: [AtomicHisto; Stage::COUNT],
    sojourn: AtomicHisto,
}

impl Slot {
    fn new(label: &str) -> Self {
        Self {
            label: label.to_string(),
            stages: std::array::from_fn(|_| AtomicHisto::new()),
            sojourn: AtomicHisto::new(),
        }
    }
}

/// A cheap, cloneable recorder bound to one registry slot. Recording is
/// lock-free and allocation-free (relaxed atomic bucket increments).
#[derive(Clone)]
pub struct SpanHandle {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for SpanHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanHandle").field("label", &self.slot.label).finish()
    }
}

impl SpanHandle {
    /// Records one stage duration in nanoseconds.
    #[inline]
    pub fn record(&self, stage: Stage, ns: u64) {
        self.slot.stages[stage.index()].record(ns);
    }

    /// Records one sampled end-to-end sojourn in nanoseconds.
    #[inline]
    pub fn record_sojourn(&self, ns: u64) {
        self.slot.sojourn.record(ns);
    }

    /// The slot's label (shard id or listener thread name).
    pub fn label(&self) -> &str {
        &self.slot.label
    }
}

/// The registry of every recorder slot in the process: shard workers,
/// net listener threads, the sim. Cloning shares the registry. The obs
/// plane owns one and drains it on demand via [`SpanRegistry::snapshot`].
#[derive(Clone, Default)]
pub struct SpanRegistry {
    slots: Arc<Mutex<Vec<Arc<Slot>>>>,
}

impl std::fmt::Debug for SpanRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.slots.lock().map(|s| s.len()).unwrap_or(0);
        f.debug_struct("SpanRegistry").field("slots", &n).finish()
    }
}

impl SpanRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new recorder slot under `label` (e.g. the shard id,
    /// or `"net0"` for a listener thread) and returns its handle. The
    /// slot lives for the registry's lifetime; a respawned worker
    /// reuses its cloned handle rather than registering again.
    pub fn handle(&self, label: &str) -> SpanHandle {
        let slot = Arc::new(Slot::new(label));
        self.slots.lock().expect("span registry poisoned").push(Arc::clone(&slot));
        SpanHandle { slot }
    }

    /// Merges every slot into a queryable [`ProfileSnapshot`].
    pub fn snapshot(&self) -> ProfileSnapshot {
        let slots = self.slots.lock().expect("span registry poisoned");
        let mut stages: [Histo; Stage::COUNT] = std::array::from_fn(|_| Histo::new());
        let mut sojourn = Histo::new();
        let mut labels: Vec<LabelProfile> = Vec::new();
        for slot in slots.iter() {
            let mut slot_stages: [Histo; Stage::COUNT] =
                std::array::from_fn(|i| slot.stages[i].snapshot());
            let slot_sojourn = slot.sojourn.snapshot();
            for (agg, s) in stages.iter_mut().zip(slot_stages.iter()) {
                agg.merge(s);
            }
            sojourn.merge(&slot_sojourn);
            match labels.iter_mut().find(|l| l.label == slot.label) {
                Some(l) => {
                    for (agg, s) in l.stages.iter_mut().zip(slot_stages.iter()) {
                        agg.merge(s);
                    }
                    l.sojourn.merge(&slot_sojourn);
                }
                None => {
                    // First slot under this label: move the snapshots in.
                    let stages = std::mem::replace(
                        &mut slot_stages,
                        std::array::from_fn(|_| Histo::new()),
                    );
                    labels.push(LabelProfile {
                        label: slot.label.clone(),
                        stages,
                        sojourn: slot_sojourn,
                    });
                }
            }
        }
        ProfileSnapshot {
            stages,
            sojourn,
            labels,
        }
    }
}

/// One label's (shard's / listener thread's) merged histograms.
#[derive(Debug, Clone)]
pub struct LabelProfile {
    /// The slot label (shard id or listener thread name).
    pub label: String,
    /// Stage histograms, indexed by [`Stage::index`]. Values are ns.
    pub stages: [Histo; Stage::COUNT],
    /// Sampled end-to-end sojourn histogram (ns).
    pub sojourn: Histo,
}

/// A merged, queryable view of every recorder in the registry: the
/// `/profile` endpoint's payload and the source of the
/// `streamshed_latency_*` Prometheus families.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// Stage histograms merged across all slots. Values are ns.
    pub stages: [Histo; Stage::COUNT],
    /// Sampled end-to-end sojourn merged across all slots (ns).
    pub sojourn: Histo,
    /// Per-label breakdown (one entry per distinct slot label).
    pub labels: Vec<LabelProfile>,
}

/// Canonical Prometheus `le` boundaries, microseconds: powers of four
/// from 1 µs to ~1.05 s. Eleven boundaries plus `+Inf` keeps the
/// exposition bounded (the full 2048-bucket layout stays internal).
const LE_BOUNDS_US: [u64; 11] =
    [1, 4, 16, 64, 256, 1024, 4096, 16_384, 65_536, 262_144, 1_048_576];

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn quantiles_json(h: &Histo) -> String {
    format!(
        "\"count\":{},\"sum_ms\":{:.6},\"p50_ms\":{:.6},\"p90_ms\":{:.6},\"p99_ms\":{:.6},\"p999_ms\":{:.6},\"max_ms\":{:.6}",
        h.count(),
        ns_to_ms(h.sum()),
        ns_to_ms(h.quantile(0.50)),
        ns_to_ms(h.quantile(0.90)),
        ns_to_ms(h.quantile(0.99)),
        ns_to_ms(h.quantile(0.999)),
        ns_to_ms(h.max()),
    )
}

impl ProfileSnapshot {
    /// Total recorded wall time across all stages, ns.
    pub fn total_ns(&self) -> u64 {
        self.stages.iter().map(|h| h.sum()).sum()
    }

    /// Stage wall-time share of the total (0.0 when nothing recorded).
    /// Shares over all six stages sum to 1 whenever anything was
    /// recorded.
    pub fn wall_share(&self, stage: Stage) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.stages[stage.index()].sum() as f64 / total as f64
        }
    }

    /// Stage CPU-time share: like [`wall_share`](Self::wall_share) but
    /// over CPU stages only — `ring_wait` is pure queueing delay and
    /// contributes (and receives) zero.
    pub fn cpu_share(&self, stage: Stage) -> f64 {
        if !stage.is_cpu() {
            return 0.0;
        }
        let total: u64 = Stage::ALL
            .iter()
            .filter(|s| s.is_cpu())
            .map(|s| self.stages[s.index()].sum())
            .sum();
        if total == 0 {
            0.0
        } else {
            self.stages[stage.index()].sum() as f64 / total as f64
        }
    }

    /// The `/profile` JSON payload: per-stage wall/CPU shares and
    /// percentile tables, the sampled sojourn table, and a per-label
    /// breakdown.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        out.push_str("{\"stages\":{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let h = &self.stages[stage.index()];
            let _ = write!(
                out,
                "\"{}\":{{\"wall_share\":{:.6},\"cpu_share\":{:.6},{}}}",
                stage.as_str(),
                self.wall_share(*stage),
                self.cpu_share(*stage),
                quantiles_json(h),
            );
        }
        let _ = write!(out, "}},\"sojourn\":{{{}}}", quantiles_json(&self.sojourn));
        out.push_str(",\"labels\":{");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"sojourn\":{{{}}},\"execute\":{{{}}},\"ring_wait\":{{{}}}}}",
                crate::telemetry::json_escape(&l.label),
                quantiles_json(&l.sojourn),
                quantiles_json(&l.stages[Stage::Execute.index()]),
                quantiles_json(&l.stages[Stage::RingWait.index()]),
            );
        }
        out.push_str("}}");
        out
    }

    /// Renders the `streamshed_latency_*` histogram families (per stage
    /// × per label, canonical `le` ladder) and the
    /// `streamshed_profile_*` share/percentile gauges into a
    /// [`PromText`]. Empty series are skipped to bound the exposition.
    pub fn render_prom(&self, p: &mut PromText) {
        let name = p.family(
            "latency_seconds",
            "Sampled per-stage latency (log-linear histogram, seconds)",
            "histogram",
        );
        for l in &self.labels {
            for stage in Stage::ALL {
                let h = &l.stages[stage.index()];
                if h.count() == 0 {
                    continue;
                }
                let bucket = format!("{name}_bucket");
                for &us in &LE_BOUNDS_US {
                    let le = format!("{}", us as f64 / 1e6);
                    p.sample_with_labels(
                        &bucket,
                        &[("stage", stage.as_str()), ("shard", &l.label), ("le", &le)],
                        h.cumulative_le(us * 1_000) as f64,
                    );
                }
                p.sample_with_labels(
                    &bucket,
                    &[("stage", stage.as_str()), ("shard", &l.label), ("le", "+Inf")],
                    h.count() as f64,
                );
                let labels = [("stage", stage.as_str()), ("shard", l.label.as_str())];
                p.sample_with_labels(&format!("{name}_sum"), &labels, h.sum() as f64 / 1e9);
                p.sample_with_labels(&format!("{name}_count"), &labels, h.count() as f64);
            }
        }

        let share = p.family(
            "profile_share",
            "Stage share of total recorded wall time",
            "gauge",
        );
        let cpu = p.family(
            "profile_cpu_share",
            "Stage share of recorded CPU time (ring_wait excluded)",
            "gauge",
        );
        for stage in Stage::ALL {
            p.sample_with_labels(&share, &[("stage", stage.as_str())], self.wall_share(stage));
            p.sample_with_labels(&cpu, &[("stage", stage.as_str())], self.cpu_share(stage));
        }
        let soj = p.family(
            "profile_sojourn_seconds",
            "Sampled end-to-end tuple sojourn quantiles",
            "gauge",
        );
        for (q, v) in [
            ("0.5", self.sojourn.quantile(0.50)),
            ("0.9", self.sojourn.quantile(0.90)),
            ("0.99", self.sojourn.quantile(0.99)),
            ("0.999", self.sojourn.quantile(0.999)),
        ] {
            p.sample_with_labels(&soj, &[("quantile", q)], v as f64 / 1e9);
        }
    }
}

/// Batch sampling helper for front doors: bumps the shared admitted
/// counter by `n` and returns how many sampling points the batch
/// crossed — the number of tuples the caller should mark with
/// [`SAMPLE_BIT`] (so batched admission samples at the same 1-in-`every`
/// rate as scalar admission). `every == 0` disables sampling at zero
/// cost.
#[inline]
pub fn sample_crossings(acc: &AtomicU64, every: u32, n: u64) -> u64 {
    if every == 0 || n == 0 {
        return 0;
    }
    let every = every as u64;
    let prev = acc.fetch_add(n, Ordering::Relaxed);
    (prev + n) / every - prev / every
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let reg = SpanRegistry::new();
        let h = reg.handle("0");
        h.record(Stage::RingWait, 1_000_000);
        h.record(Stage::Execute, 3_000_000);
        h.record_sojourn(4_000_000);
        let snap = reg.snapshot();
        let total: f64 = Stage::ALL.iter().map(|s| snap.wall_share(*s)).sum();
        assert!((total - 1.0).abs() < 1e-9, "wall shares sum to {total}");
        let cpu: f64 = Stage::ALL.iter().map(|s| snap.cpu_share(*s)).sum();
        assert!((cpu - 1.0).abs() < 1e-9, "cpu shares sum to {cpu}");
        assert_eq!(snap.cpu_share(Stage::RingWait), 0.0);
        assert!(snap.wall_share(Stage::Execute) > 0.7);
    }

    #[test]
    fn snapshot_merges_slots_and_groups_labels() {
        let reg = SpanRegistry::new();
        let a = reg.handle("0");
        let b = reg.handle("0"); // respawned worker, same label
        let c = reg.handle("net0");
        a.record(Stage::Execute, 1000);
        b.record(Stage::Execute, 2000);
        c.record(Stage::NetRead, 500);
        let snap = reg.snapshot();
        assert_eq!(snap.stages[Stage::Execute.index()].count(), 2);
        assert_eq!(snap.labels.len(), 2);
        let shard0 = snap.labels.iter().find(|l| l.label == "0").unwrap();
        assert_eq!(shard0.stages[Stage::Execute.index()].count(), 2);
    }

    #[test]
    fn profile_json_is_well_formed() {
        let reg = SpanRegistry::new();
        let h = reg.handle("0");
        for i in 0..100u64 {
            h.record(Stage::Execute, i * 10_000);
            h.record(Stage::RingWait, i * 1_000);
            h.record_sojourn(i * 11_000);
        }
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"execute\""));
        assert!(json.contains("\"wall_share\""));
        assert!(json.contains("\"sojourn\""));
        assert!(json.contains("\"p999_ms\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Braces balance (cheap well-formedness check without a parser).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn prom_families_have_help_type_and_le_ladder() {
        let reg = SpanRegistry::new();
        let h = reg.handle("0");
        for i in 1..200u64 {
            h.record(Stage::Execute, i * 100_000);
        }
        h.record_sojourn(5_000_000);
        let mut p = PromText::new("streamshed");
        reg.snapshot().render_prom(&mut p);
        let text = p.finish();
        assert!(text.contains("# TYPE streamshed_latency_seconds histogram"));
        assert!(text.contains("# HELP streamshed_latency_seconds "));
        assert!(text.contains("streamshed_latency_seconds_bucket{stage=\"execute\",shard=\"0\",le=\"+Inf\"} 199"));
        assert!(text.contains("streamshed_latency_seconds_count{stage=\"execute\",shard=\"0\"} 199"));
        assert!(text.contains("streamshed_latency_seconds_sum{stage=\"execute\",shard=\"0\"}"));
        assert!(text.contains("# TYPE streamshed_profile_share gauge"));
        assert!(text.contains("streamshed_profile_share{stage=\"ring_wait\"} 0"));
        assert!(text.contains("# TYPE streamshed_profile_sojourn_seconds gauge"));
        // Cumulative le ladder is monotone for the execute series.
        let mut prev = 0.0f64;
        for line in text.lines() {
            if line.starts_with("streamshed_latency_seconds_bucket{stage=\"execute\"") {
                let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= prev, "le ladder not monotone: {line}");
                prev = v;
            }
        }
    }

    #[test]
    fn hostile_labels_are_escaped_in_latency_families() {
        // The label-escaping satellite: a hostile slot label cannot
        // corrupt the exposition.
        let reg = SpanRegistry::new();
        let h = reg.handle("evil\"\nlabel\\");
        h.record(Stage::Execute, 1000);
        let mut p = PromText::new("streamshed");
        reg.snapshot().render_prom(&mut p);
        let text = p.finish();
        assert!(text.contains("shard=\"evil\\\"\\nlabel\\\\\""), "{text}");
        for line in text.lines() {
            assert!(!line.is_empty() || line.trim().is_empty());
        }
        // No raw newline broke a sample line: every non-comment line
        // still ends in a parseable float.
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let val = line.rsplit(' ').next().unwrap();
            assert!(val.parse::<f64>().is_ok(), "unparseable line: {line}");
        }
    }

    #[test]
    fn sample_crossing_marks_once_per_every() {
        let acc = AtomicU64::new(0);
        let mut marks = 0;
        for _ in 0..640 {
            marks += sample_crossings(&acc, 64, 1);
        }
        assert_eq!(marks, 10);
        // Batched offers sample at the same overall rate: 10 batches of
        // 100 tuples cross 1000/64 = 15 points (± the phase).
        let acc = AtomicU64::new(0);
        let mut marks = 0;
        for _ in 0..10 {
            marks += sample_crossings(&acc, 64, 100);
        }
        assert_eq!(marks, 1000 / 64);
        assert_eq!(sample_crossings(&acc, 0, 100), 0, "every=0 disables sampling");
    }
}
