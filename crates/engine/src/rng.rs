//! The engine's randomness seam.
//!
//! Every hot-path random decision in the engine — tuple payload draws,
//! entry-shedder coin flips, shed-location selection — goes through the
//! [`EngineRng`] type defined here, so the generator can be swapped in
//! one place and every call site seeds identically
//! (`engine_rng(cfg.seed)`). The current generator is xoshiro256+
//! ([`rand::rngs::SmallRng`]): the same 256-bit state transition as the
//! previous `StdRng` (xoshiro256++) with a cheaper output stage, which
//! matters at one-draw-per-tuple rates.
//!
//! The module also hosts [`GeometricSkip`], the entry shedder's
//! skip-sampling state. Instead of flipping a Bernoulli(α) coin per
//! arrival, it draws the number of *admissions until the next drop* once
//! per drop:
//!
//! ```text
//! P(admit m tuples, then drop one) = (1 − α)^m · α,   m = ⌊ln u / ln(1 − α)⌋
//! ```
//!
//! with `u` uniform in `[0, 1)`. The admit/drop sequence this produces is
//! distributed identically to iid per-tuple coin flips (the gaps between
//! drops in a Bernoulli process are exactly geometric), but costs one RNG
//! draw and one logarithm per *drop* instead of one draw per *arrival*.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// The engine's pseudo-random generator (currently xoshiro256+).
pub type EngineRng = SmallRng;

/// Builds the engine generator from a 64-bit seed. All engine call sites
/// construct their RNG through this function so a generator swap stays a
/// one-line change.
pub fn engine_rng(seed: u64) -> EngineRng {
    EngineRng::seed_from_u64(seed)
}

/// Skip-sampling state for one entry shedder: the number of arrivals to
/// admit before the next drop.
///
/// `α` is fixed at construction; when the controller issues a new drop
/// probability, discard the state and construct a fresh one (the sampled
/// skip is only valid under the α it was drawn for).
#[derive(Debug, Clone, Copy)]
pub struct GeometricSkip {
    alpha: f64,
    /// Arrivals still to admit before the next drop. `u64::MAX` doubles
    /// as "effectively never" for α = 0.
    admits_left: u64,
}

impl GeometricSkip {
    /// Creates skip state for drop probability `alpha` (clamped to
    /// `[0, 1]`), drawing the first skip from `rng`.
    pub fn new(alpha: f64, rng: &mut EngineRng) -> Self {
        let alpha = if alpha.is_nan() { 0.0 } else { alpha.clamp(0.0, 1.0) };
        let mut s = Self {
            alpha,
            admits_left: 0,
        };
        s.admits_left = s.draw_skip(rng);
        s
    }

    /// The drop probability this state was drawn for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Decides the fate of one arrival: `true` means drop it. Costs an
    /// RNG draw only when it answers `true` (to sample the next gap).
    #[inline]
    pub fn should_drop(&mut self, rng: &mut EngineRng) -> bool {
        if self.admits_left == 0 {
            self.admits_left = self.draw_skip(rng);
            true
        } else {
            self.admits_left -= 1;
            false
        }
    }

    /// Samples the number of admissions before the next drop:
    /// `⌊ln u / ln(1 − α)⌋` for α ∈ (0, 1); never for α = 0; immediately
    /// for α = 1.
    fn draw_skip(&mut self, rng: &mut EngineRng) -> u64 {
        sample_skip(self.alpha, rng.gen::<f64>())
    }
}

/// The inverse-CDF geometric draw underlying [`GeometricSkip`]: maps a
/// uniform `u ∈ [0, 1)` to the number of admissions before the next drop
/// under drop probability `alpha`. Exposed for the statistical
/// equivalence tests.
#[inline]
pub fn sample_skip(alpha: f64, u: f64) -> u64 {
    if alpha <= 0.0 {
        return u64::MAX; // never drop
    }
    if alpha >= 1.0 {
        return 0; // drop every arrival
    }
    // ln u is ≤ 0 and finite for u ∈ (0, 1); u = 0 maps to the deep tail,
    // which the saturating cast turns into "effectively never".
    let m = (u.ln() / (1.0 - alpha).ln()).floor();
    if m >= u64::MAX as f64 {
        u64::MAX
    } else {
        m as u64
    }
}

/// Commanded drop probabilities at or above this threshold use a plain
/// Bernoulli coin flip per arrival; below it, geometric skip sampling.
///
/// The crossover is empirical (see `shedder.per_alpha` in the bench
/// report): skip sampling amortises one RNG draw + one `ln` per *drop*,
/// so it wins decisively in the small-α regime (≈2.4× at α = 0.01) but
/// loses once drops are frequent enough that the geometric gaps are
/// short (0.86× at α = 0.05, 0.49× at α = 0.1) — the `ln` then costs
/// more than the coin flips it replaces. The hybrid picks the winner
/// per control period from the commanded α.
pub const BERNOULLI_ALPHA_MIN: f64 = 0.02;

/// Hybrid entry-shedding state for one entry: Bernoulli coin flips when
/// drops are frequent (α ≥ [`BERNOULLI_ALPHA_MIN`]), geometric skip
/// sampling when they are rare.
///
/// Like [`GeometricSkip`], α is fixed at construction; when the
/// controller issues a new drop probability, discard the state and
/// construct a fresh one (which is also where the Bernoulli-vs-skip
/// choice is re-made).
#[derive(Debug, Clone, Copy)]
pub enum EntryShedder {
    /// Per-arrival coin flip (one RNG draw per arrival).
    Bernoulli(f64),
    /// Skip sampling (one RNG draw per drop).
    Skip(GeometricSkip),
}

impl EntryShedder {
    /// Creates hybrid shedding state for drop probability `alpha`,
    /// picking the faster sampler for that α.
    pub fn new(alpha: f64, rng: &mut EngineRng) -> Self {
        let alpha = if alpha.is_nan() { 0.0 } else { alpha.clamp(0.0, 1.0) };
        if alpha >= BERNOULLI_ALPHA_MIN {
            EntryShedder::Bernoulli(alpha)
        } else {
            EntryShedder::Skip(GeometricSkip::new(alpha, rng))
        }
    }

    /// The drop probability this state was built for.
    pub fn alpha(&self) -> f64 {
        match self {
            EntryShedder::Bernoulli(a) => *a,
            EntryShedder::Skip(s) => s.alpha(),
        }
    }

    /// Decides the fate of one arrival: `true` means drop it.
    #[inline]
    pub fn should_drop(&mut self, rng: &mut EngineRng) -> bool {
        match self {
            EntryShedder::Bernoulli(a) => rng.gen::<f64>() < *a,
            EntryShedder::Skip(s) => s.should_drop(rng),
        }
    }
}

/// Sentinel for [`AtomicShedder`]'s skip counter: the next decision must
/// resample. (A genuine skip of `u64::MAX` decays into an extra
/// resample, which the geometric distribution's memorylessness makes
/// statistically harmless.)
const SKIP_RESAMPLE: u64 = u64::MAX;

/// Lock-free hybrid entry shedder for the real-time engines, shared by
/// concurrent `offer()` callers.
///
/// For α ≥ [`BERNOULLI_ALPHA_MIN`] each arrival flips a coin from a racy
/// xorshift64* state; below it, arrivals decrement a shared geometric
/// skip counter and only a drop (or an α change, via
/// [`AtomicShedder::reset_skip`]) pays for an RNG draw + `ln`. Both
/// states use relaxed load/store — concurrent offerers can double-consume
/// a skip or reuse a coin state, which perturbs the realised drop rate
/// far less than scheduling jitter already does.
#[derive(Debug)]
pub struct AtomicShedder {
    coin_state: AtomicU64,
    skip_left: AtomicU64,
}

impl AtomicShedder {
    /// Creates shedder state from a nonzero-ified seed.
    pub fn new(seed: u64) -> Self {
        Self {
            coin_state: AtomicU64::new(seed | 0x9E3779B97F4A7C15),
            skip_left: AtomicU64::new(SKIP_RESAMPLE),
        }
    }

    /// Invalidates the sampled skip. Call whenever the commanded α
    /// changes: a sampled gap is only valid under the α it was drawn
    /// for.
    pub fn reset_skip(&self) {
        self.skip_left.store(SKIP_RESAMPLE, Ordering::Relaxed);
    }

    /// Decides the fate of one arrival under drop probability `alpha`:
    /// `true` means drop it.
    #[inline]
    pub fn should_drop(&self, alpha: f64) -> bool {
        if alpha <= 0.0 {
            return false;
        }
        if alpha >= 1.0 {
            return true;
        }
        if alpha >= BERNOULLI_ALPHA_MIN {
            return self.coin_flip() < alpha;
        }
        let s = self.skip_left.load(Ordering::Relaxed);
        let current = if s == SKIP_RESAMPLE {
            sample_skip(alpha, self.coin_flip())
        } else {
            s
        };
        if current == 0 {
            let next = sample_skip(alpha, self.coin_flip());
            self.skip_left.store(next, Ordering::Relaxed);
            true
        } else {
            self.skip_left.store(current - 1, Ordering::Relaxed);
            false
        }
    }

    /// xorshift64*; uniform enough for statistical shedding.
    #[inline]
    fn coin_flip(&self) -> f64 {
        let mut x = self.coin_state.load(Ordering::Relaxed);
        x = xorshift64(x);
        self.coin_state.store(x, Ordering::Relaxed);
        unit_from_state(x)
    }

    /// Decides the fate of a batch of `n` arrivals under drop
    /// probability `alpha` in **one pass**, returning the number to
    /// drop. The coin/skip state is loaded into registers once, advanced
    /// locally, and stored back once — one load/store pair per batch
    /// instead of per arrival. On the geometric branch the loop runs
    /// once per *drop* (the sampled skip counter is carried across the
    /// whole batch), so an α = 0.01 batch of 1024 costs ~10 draws.
    ///
    /// Positions of the drops within the batch are not reported: at the
    /// front door a batch is a run of identical anonymous tuples, so
    /// only the count matters. Keyed batches use
    /// [`shed_batch_each`](Self::shed_batch_each).
    pub fn shed_batch(&self, alpha: f64, n: u64) -> u64 {
        self.shed_batch_inner(alpha, n, |_| {})
    }

    /// Batch decision that also reports each *admitted* position (for
    /// keyed batches, where the survivor set determines per-shard
    /// grouping). Calls `keep(i)` for every admitted index `i < n`, in
    /// order; returns the number dropped.
    pub fn shed_batch_each(&self, alpha: f64, n: u64, keep: impl FnMut(usize)) -> u64 {
        self.shed_batch_inner(alpha, n, keep)
    }

    fn shed_batch_inner(&self, alpha: f64, n: u64, mut keep: impl FnMut(usize)) -> u64 {
        if n == 0 {
            return 0;
        }
        if alpha <= 0.0 {
            for i in 0..n {
                keep(i as usize);
            }
            return 0;
        }
        if alpha >= 1.0 {
            return n;
        }
        if alpha >= BERNOULLI_ALPHA_MIN {
            // Bernoulli branch on a register-local xorshift state.
            let mut x = self.coin_state.load(Ordering::Relaxed);
            let mut drops = 0;
            for i in 0..n {
                x = xorshift64(x);
                if unit_from_state(x) < alpha {
                    drops += 1;
                } else {
                    keep(i as usize);
                }
            }
            self.coin_state.store(x, Ordering::Relaxed);
            return drops;
        }
        // Geometric branch: carry the shared skip counter across the
        // batch — one draw + one `ln` per drop, not per arrival.
        let mut x = self.coin_state.load(Ordering::Relaxed);
        let s = self.skip_left.load(Ordering::Relaxed);
        let mut left = if s == SKIP_RESAMPLE {
            x = xorshift64(x);
            sample_skip(alpha, unit_from_state(x))
        } else {
            s
        };
        let mut drops = 0;
        let mut i = 0u64;
        while i < n {
            if left == 0 {
                drops += 1;
                x = xorshift64(x);
                left = sample_skip(alpha, unit_from_state(x));
            } else {
                let admit = left.min(n - i);
                for k in 0..admit {
                    keep((i + k) as usize);
                }
                left -= admit;
                i += admit;
                continue;
            }
            i += 1;
        }
        self.skip_left.store(left, Ordering::Relaxed);
        self.coin_state.store(x, Ordering::Relaxed);
        drops
    }
}

/// One xorshift64* state transition (output stage applied separately by
/// [`unit_from_state`]).
#[inline]
fn xorshift64(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x
}

/// Maps a xorshift64* state to a uniform f64 in `[0, 1)`.
#[inline]
fn unit_from_state(x: u64) -> f64 {
    (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_zero_alpha_never_drops() {
        let mut rng = engine_rng(1);
        let mut skip = GeometricSkip::new(0.0, &mut rng);
        for _ in 0..10_000 {
            assert!(!skip.should_drop(&mut rng));
        }
    }

    #[test]
    fn skip_full_alpha_always_drops() {
        let mut rng = engine_rng(2);
        let mut skip = GeometricSkip::new(1.0, &mut rng);
        for _ in 0..1_000 {
            assert!(skip.should_drop(&mut rng));
        }
    }

    #[test]
    fn skip_drop_rate_matches_alpha() {
        for &alpha in &[0.01, 0.1, 0.5, 0.9] {
            let mut rng = engine_rng(3);
            let mut skip = GeometricSkip::new(alpha, &mut rng);
            let n = 200_000;
            let drops = (0..n).filter(|_| skip.should_drop(&mut rng)).count();
            let rate = drops as f64 / n as f64;
            // 200k samples: 5σ ≈ 5·sqrt(α(1−α)/n) < 0.006 for all α here.
            assert!(
                (rate - alpha).abs() < 0.01,
                "alpha {alpha}: observed {rate}"
            );
        }
    }

    #[test]
    fn sample_skip_inverse_cdf_boundaries() {
        // u just above 1−α ⇒ drop immediately; u below ⇒ admit ≥ 1.
        assert_eq!(sample_skip(0.5, 0.6), 0);
        assert_eq!(sample_skip(0.5, 0.4), 1);
        assert_eq!(sample_skip(0.0, 0.5), u64::MAX);
        assert_eq!(sample_skip(1.0, 0.5), 0);
        // Degenerate uniform draw of exactly 0 saturates instead of
        // overflowing.
        assert_eq!(sample_skip(0.5, 0.0), u64::MAX);
    }

    #[test]
    fn engine_rng_is_deterministic_per_seed() {
        let mut a = engine_rng(42);
        let mut b = engine_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = engine_rng(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn hybrid_picks_sampler_by_alpha() {
        let mut rng = engine_rng(5);
        assert!(matches!(
            EntryShedder::new(BERNOULLI_ALPHA_MIN / 2.0, &mut rng),
            EntryShedder::Skip(_)
        ));
        assert!(matches!(
            EntryShedder::new(BERNOULLI_ALPHA_MIN, &mut rng),
            EntryShedder::Bernoulli(_)
        ));
        assert!(matches!(
            EntryShedder::new(0.5, &mut rng),
            EntryShedder::Bernoulli(_)
        ));
    }

    #[test]
    fn hybrid_drop_rate_matches_alpha_on_both_branches() {
        for &alpha in &[0.005, 0.01, 0.05, 0.3, 0.9] {
            let mut rng = engine_rng(6);
            let mut shedder = EntryShedder::new(alpha, &mut rng);
            let n = 200_000;
            let drops = (0..n).filter(|_| shedder.should_drop(&mut rng)).count();
            let rate = drops as f64 / n as f64;
            assert!(
                (rate - alpha).abs() < 0.01,
                "alpha {alpha}: observed {rate}"
            );
        }
    }

    #[test]
    fn atomic_shedder_rate_matches_alpha_on_both_branches() {
        for &alpha in &[0.0, 0.005, 0.01, 0.05, 0.5, 1.0] {
            let shedder = AtomicShedder::new(99);
            let n = 200_000;
            let drops = (0..n).filter(|_| shedder.should_drop(alpha)).count();
            let rate = drops as f64 / n as f64;
            assert!(
                (rate - alpha).abs() < 0.01,
                "alpha {alpha}: observed {rate}"
            );
        }
    }

    #[test]
    fn shed_batch_matches_scalar_decisions_exactly() {
        // From identical state, one batch pass must reproduce the exact
        // admit/drop sequence of n scalar calls — the batch path is an
        // amortisation, not a different random process.
        for &alpha in &[0.005, 0.01, 0.05, 0.3, 0.9] {
            let scalar = AtomicShedder::new(7);
            let batch = AtomicShedder::new(7);
            let n = 10_000u64;
            let scalar_drops = (0..n).filter(|_| scalar.should_drop(alpha)).count() as u64;
            let mut kept = Vec::new();
            let batch_drops = batch.shed_batch_each(alpha, n, |i| kept.push(i));
            assert_eq!(batch_drops, scalar_drops, "alpha {alpha}");
            assert_eq!(kept.len() as u64, n - batch_drops);
        }
    }

    #[test]
    fn shed_batch_carries_skip_state_across_batches() {
        // Splitting a stream into arbitrary batch sizes must not change
        // the realised drop count vs one big batch.
        let whole = AtomicShedder::new(11);
        let split = AtomicShedder::new(11);
        let drops_whole = whole.shed_batch(0.01, 100_000);
        let mut drops_split = 0;
        let sizes = [1u64, 16, 256, 1024, 3, 977];
        let mut done = 0u64;
        let mut i = 0;
        while done < 100_000 {
            let sz = sizes[i % sizes.len()].min(100_000 - done);
            drops_split += split.shed_batch(0.01, sz);
            done += sz;
            i += 1;
        }
        assert_eq!(drops_whole, drops_split);
    }

    #[test]
    fn shed_batch_edge_alphas() {
        let s = AtomicShedder::new(1);
        assert_eq!(s.shed_batch(0.0, 1024), 0);
        assert_eq!(s.shed_batch(1.0, 1024), 1024);
        assert_eq!(s.shed_batch(0.5, 0), 0);
        let mut kept = Vec::new();
        s.shed_batch_each(0.0, 4, |i| kept.push(i));
        assert_eq!(kept, vec![0, 1, 2, 3]);
    }

    #[test]
    fn atomic_shedder_reset_skip_is_safe_mid_stream() {
        let shedder = AtomicShedder::new(3);
        let mut drops = 0;
        for i in 0..100_000 {
            if i % 1000 == 0 {
                shedder.reset_skip();
            }
            if shedder.should_drop(0.01) {
                drops += 1;
            }
        }
        let rate = drops as f64 / 100_000.0;
        assert!((rate - 0.01).abs() < 0.005, "observed {rate}");
    }
}
