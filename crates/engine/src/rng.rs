//! The engine's randomness seam.
//!
//! Every hot-path random decision in the engine — tuple payload draws,
//! entry-shedder coin flips, shed-location selection — goes through the
//! [`EngineRng`] type defined here, so the generator can be swapped in
//! one place and every call site seeds identically
//! (`engine_rng(cfg.seed)`). The current generator is xoshiro256+
//! ([`rand::rngs::SmallRng`]): the same 256-bit state transition as the
//! previous `StdRng` (xoshiro256++) with a cheaper output stage, which
//! matters at one-draw-per-tuple rates.
//!
//! The module also hosts [`GeometricSkip`], the entry shedder's
//! skip-sampling state. Instead of flipping a Bernoulli(α) coin per
//! arrival, it draws the number of *admissions until the next drop* once
//! per drop:
//!
//! ```text
//! P(admit m tuples, then drop one) = (1 − α)^m · α,   m = ⌊ln u / ln(1 − α)⌋
//! ```
//!
//! with `u` uniform in `[0, 1)`. The admit/drop sequence this produces is
//! distributed identically to iid per-tuple coin flips (the gaps between
//! drops in a Bernoulli process are exactly geometric), but costs one RNG
//! draw and one logarithm per *drop* instead of one draw per *arrival*.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The engine's pseudo-random generator (currently xoshiro256+).
pub type EngineRng = SmallRng;

/// Builds the engine generator from a 64-bit seed. All engine call sites
/// construct their RNG through this function so a generator swap stays a
/// one-line change.
pub fn engine_rng(seed: u64) -> EngineRng {
    EngineRng::seed_from_u64(seed)
}

/// Skip-sampling state for one entry shedder: the number of arrivals to
/// admit before the next drop.
///
/// `α` is fixed at construction; when the controller issues a new drop
/// probability, discard the state and construct a fresh one (the sampled
/// skip is only valid under the α it was drawn for).
#[derive(Debug, Clone, Copy)]
pub struct GeometricSkip {
    alpha: f64,
    /// Arrivals still to admit before the next drop. `u64::MAX` doubles
    /// as "effectively never" for α = 0.
    admits_left: u64,
}

impl GeometricSkip {
    /// Creates skip state for drop probability `alpha` (clamped to
    /// `[0, 1]`), drawing the first skip from `rng`.
    pub fn new(alpha: f64, rng: &mut EngineRng) -> Self {
        let alpha = if alpha.is_nan() { 0.0 } else { alpha.clamp(0.0, 1.0) };
        let mut s = Self {
            alpha,
            admits_left: 0,
        };
        s.admits_left = s.draw_skip(rng);
        s
    }

    /// The drop probability this state was drawn for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Decides the fate of one arrival: `true` means drop it. Costs an
    /// RNG draw only when it answers `true` (to sample the next gap).
    #[inline]
    pub fn should_drop(&mut self, rng: &mut EngineRng) -> bool {
        if self.admits_left == 0 {
            self.admits_left = self.draw_skip(rng);
            true
        } else {
            self.admits_left -= 1;
            false
        }
    }

    /// Samples the number of admissions before the next drop:
    /// `⌊ln u / ln(1 − α)⌋` for α ∈ (0, 1); never for α = 0; immediately
    /// for α = 1.
    fn draw_skip(&mut self, rng: &mut EngineRng) -> u64 {
        sample_skip(self.alpha, rng.gen::<f64>())
    }
}

/// The inverse-CDF geometric draw underlying [`GeometricSkip`]: maps a
/// uniform `u ∈ [0, 1)` to the number of admissions before the next drop
/// under drop probability `alpha`. Exposed for the statistical
/// equivalence tests.
#[inline]
pub fn sample_skip(alpha: f64, u: f64) -> u64 {
    if alpha <= 0.0 {
        return u64::MAX; // never drop
    }
    if alpha >= 1.0 {
        return 0; // drop every arrival
    }
    // ln u is ≤ 0 and finite for u ∈ (0, 1); u = 0 maps to the deep tail,
    // which the saturating cast turns into "effectively never".
    let m = (u.ln() / (1.0 - alpha).ln()).floor();
    if m >= u64::MAX as f64 {
        u64::MAX
    } else {
        m as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_zero_alpha_never_drops() {
        let mut rng = engine_rng(1);
        let mut skip = GeometricSkip::new(0.0, &mut rng);
        for _ in 0..10_000 {
            assert!(!skip.should_drop(&mut rng));
        }
    }

    #[test]
    fn skip_full_alpha_always_drops() {
        let mut rng = engine_rng(2);
        let mut skip = GeometricSkip::new(1.0, &mut rng);
        for _ in 0..1_000 {
            assert!(skip.should_drop(&mut rng));
        }
    }

    #[test]
    fn skip_drop_rate_matches_alpha() {
        for &alpha in &[0.01, 0.1, 0.5, 0.9] {
            let mut rng = engine_rng(3);
            let mut skip = GeometricSkip::new(alpha, &mut rng);
            let n = 200_000;
            let drops = (0..n).filter(|_| skip.should_drop(&mut rng)).count();
            let rate = drops as f64 / n as f64;
            // 200k samples: 5σ ≈ 5·sqrt(α(1−α)/n) < 0.006 for all α here.
            assert!(
                (rate - alpha).abs() < 0.01,
                "alpha {alpha}: observed {rate}"
            );
        }
    }

    #[test]
    fn sample_skip_inverse_cdf_boundaries() {
        // u just above 1−α ⇒ drop immediately; u below ⇒ admit ≥ 1.
        assert_eq!(sample_skip(0.5, 0.6), 0);
        assert_eq!(sample_skip(0.5, 0.4), 1);
        assert_eq!(sample_skip(0.0, 0.5), u64::MAX);
        assert_eq!(sample_skip(1.0, 0.5), 0);
        // Degenerate uniform draw of exactly 0 saturates instead of
        // overflowing.
        assert_eq!(sample_skip(0.5, 0.0), u64::MAX);
    }

    #[test]
    fn engine_rng_is_deterministic_per_seed() {
        let mut a = engine_rng(42);
        let mut b = engine_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = engine_rng(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }
}
