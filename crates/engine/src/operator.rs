//! Query operators.
//!
//! Operators are *logic only*; their CPU cost is a property of the network
//! node (the paper's identification network fixes a cost per operator,
//! §4.2). Built-in operators cover the shapes in Fig. 2 of the paper:
//! filters, maps, unions, sliding-window joins, windowed aggregates, and
//! splits. Custom logic can be plugged in via the [`OperatorLogic`] trait.

use crate::time::{SimDuration, SimTime};
use crate::tuple::Tuple;
use std::collections::VecDeque;
use std::fmt;

/// Input port index of an operator (0 for unary; 0/1 for binary).
pub type PortId = usize;

/// Collects the output tuples of one operator invocation.
///
/// `emit` broadcasts to every outgoing edge; `emit_to` targets one output
/// *branch* (used by [`Split`]). Branch indices map to edge groups in the
/// network description.
#[derive(Debug, Default)]
pub struct OutputBuffer {
    pub(crate) items: Vec<(Option<usize>, Tuple)>,
}

impl OutputBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Broadcasts a tuple to all output edges.
    pub fn emit(&mut self, tuple: Tuple) {
        self.items.push((None, tuple));
    }

    /// Sends a tuple to one output branch only.
    pub fn emit_to(&mut self, branch: usize, tuple: Tuple) {
        self.items.push((Some(branch), tuple));
    }

    /// Number of buffered outputs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no outputs were produced.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Clears the buffer for reuse (workhorse pattern — one buffer per
    /// scheduler, reused across invocations).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// The behaviour of a query operator.
pub trait OperatorLogic: Send {
    /// Operator kind name, for diagnostics.
    fn kind(&self) -> &'static str;

    /// Processes one input tuple, producing zero or more outputs.
    fn process(&mut self, port: PortId, tuple: &Tuple, now: SimTime, out: &mut OutputBuffer);

    /// Expected number of output tuples per input tuple, used for load
    /// (`downstream cost`) estimation. Defaults to 1.
    fn expected_selectivity(&self) -> f64 {
        1.0
    }

    /// True if this operator forwards every input tuple unchanged on its
    /// default branch (identity maps, unions). The scheduler uses this to
    /// route such tuples without an indirect `process` call; the answer
    /// must never change over the operator's lifetime.
    fn is_passthrough(&self) -> bool {
        false
    }

    /// Number of input ports (1 for unary, 2 for binary operators).
    fn ports(&self) -> usize {
        1
    }
}

impl fmt::Debug for dyn OperatorLogic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OperatorLogic({})", self.kind())
    }
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

/// A selection operator: passes tuples matching a predicate.
pub struct Filter {
    predicate: Box<dyn FnMut(&Tuple) -> bool + Send>,
    declared_selectivity: f64,
}

impl Filter {
    /// Filter with an arbitrary predicate and a declared expected
    /// selectivity (used only for load estimation).
    pub fn new(
        declared_selectivity: f64,
        predicate: impl FnMut(&Tuple) -> bool + Send + 'static,
    ) -> Self {
        assert!((0.0..=1.0).contains(&declared_selectivity));
        Self {
            predicate: Box::new(predicate),
            declared_selectivity,
        }
    }

    /// Passes tuples whose `value` is below `threshold`.
    ///
    /// With values uniform in `[0, 1)` this realises a fixed selectivity of
    /// `threshold` — exactly how the paper pins selectivities during system
    /// identification (§4.2).
    pub fn value_below(threshold: f64) -> Self {
        Self::new(threshold.clamp(0.0, 1.0), move |t: &Tuple| {
            t.value < threshold
        })
    }

    /// Passes tuples whose key is congruent to `r (mod m)` — a
    /// deterministic 1/m selectivity independent of values.
    pub fn key_mod(m: u64, r: u64) -> Self {
        assert!(m > 0);
        Self::new(1.0 / m as f64, move |t: &Tuple| t.key % m == r)
    }
}

impl OperatorLogic for Filter {
    fn kind(&self) -> &'static str {
        "filter"
    }

    fn process(&mut self, _port: PortId, tuple: &Tuple, _now: SimTime, out: &mut OutputBuffer) {
        if (self.predicate)(tuple) {
            out.emit(*tuple);
        }
    }

    fn expected_selectivity(&self) -> f64 {
        self.declared_selectivity
    }
}

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

/// A stateless transformation operator (one output per input).
pub struct Map {
    f: Box<dyn FnMut(&Tuple) -> Tuple + Send>,
    identity: bool,
}

impl Map {
    /// Map with an arbitrary transform. The transform should use
    /// [`Tuple::derive`] to preserve delay attribution.
    pub fn new(f: impl FnMut(&Tuple) -> Tuple + Send + 'static) -> Self {
        Self {
            f: Box::new(f),
            identity: false,
        }
    }

    /// Scales the value by a constant.
    pub fn scale(factor: f64) -> Self {
        Self::new(move |t: &Tuple| t.derive(t.key, t.value * factor))
    }

    /// Identity map — a pure cost carrier, as used for most of the 14
    /// operators of the identification network.
    pub fn identity() -> Self {
        let mut m = Self::new(|t: &Tuple| *t);
        m.identity = true;
        m
    }
}

impl OperatorLogic for Map {
    fn kind(&self) -> &'static str {
        "map"
    }

    fn process(&mut self, _port: PortId, tuple: &Tuple, _now: SimTime, out: &mut OutputBuffer) {
        out.emit((self.f)(tuple));
    }

    fn is_passthrough(&self) -> bool {
        self.identity
    }
}

// ---------------------------------------------------------------------------
// Union
// ---------------------------------------------------------------------------

/// Merges two input streams (binary, order of arrival).
#[derive(Debug, Default)]
pub struct Union;

impl OperatorLogic for Union {
    fn kind(&self) -> &'static str {
        "union"
    }

    fn process(&mut self, _port: PortId, tuple: &Tuple, _now: SimTime, out: &mut OutputBuffer) {
        out.emit(*tuple);
    }

    fn ports(&self) -> usize {
        2
    }

    fn is_passthrough(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Sliding-window join
// ---------------------------------------------------------------------------

/// A binary equi-join over sliding time windows (§3: "multi-stream joins
/// are performed over a sliding window whose size is specified ... in
/// number of tuples or time").
pub struct WindowJoin {
    window: WindowSpec,
    buffers: [VecDeque<(SimTime, Tuple)>; 2],
    declared_selectivity: f64,
}

/// Window extent for stateful operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Keep tuples younger than the given age.
    Time(SimDuration),
    /// Keep at most this many tuples.
    Count(usize),
}

impl WindowJoin {
    /// Creates a join with the given window applied to both inputs and a
    /// declared expected selectivity (expected matches per probe) for load
    /// estimation.
    pub fn new(window: WindowSpec, declared_selectivity: f64) -> Self {
        Self {
            window,
            buffers: [VecDeque::new(), VecDeque::new()],
            declared_selectivity,
        }
    }

    fn evict(&mut self, side: usize, now: SimTime) {
        match self.window {
            WindowSpec::Time(w) => {
                while let Some(&(t, _)) = self.buffers[side].front() {
                    if now - t > w {
                        self.buffers[side].pop_front();
                    } else {
                        break;
                    }
                }
            }
            WindowSpec::Count(n) => {
                while self.buffers[side].len() > n {
                    self.buffers[side].pop_front();
                }
            }
        }
    }

    /// Current number of buffered tuples on a side (test/diagnostic hook).
    pub fn window_len(&self, side: usize) -> usize {
        self.buffers[side].len()
    }
}

impl OperatorLogic for WindowJoin {
    fn kind(&self) -> &'static str {
        "window-join"
    }

    fn process(&mut self, port: PortId, tuple: &Tuple, now: SimTime, out: &mut OutputBuffer) {
        debug_assert!(port < 2);
        let other = 1 - port;
        self.evict(other, now);
        for (_, buffered) in &self.buffers[other] {
            if buffered.key == tuple.key {
                // The joined tuple is attributed to the probing input.
                out.emit(tuple.derive(tuple.key, tuple.value + buffered.value));
            }
        }
        self.buffers[port].push_back((now, *tuple));
        self.evict(port, now);
    }

    fn expected_selectivity(&self) -> f64 {
        self.declared_selectivity
    }

    fn ports(&self) -> usize {
        2
    }
}

// ---------------------------------------------------------------------------
// Windowed aggregate
// ---------------------------------------------------------------------------

/// The aggregate function of an [`Aggregate`] operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Arithmetic mean of values in the window.
    Avg,
    /// Sum of values in the window.
    Sum,
    /// Count of tuples in the window.
    Count,
    /// Maximum value in the window.
    Max,
}

/// A tumbling count-window aggregate: consumes `window` tuples, emits one.
pub struct Aggregate {
    window: usize,
    func: AggFunc,
    count: usize,
    sum: f64,
    max: f64,
}

impl Aggregate {
    /// Creates an aggregate over tumbling windows of `window` tuples.
    pub fn new(window: usize, func: AggFunc) -> Self {
        assert!(window >= 1);
        Self {
            window,
            func,
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }
}

impl OperatorLogic for Aggregate {
    fn kind(&self) -> &'static str {
        "aggregate"
    }

    fn process(&mut self, _port: PortId, tuple: &Tuple, _now: SimTime, out: &mut OutputBuffer) {
        self.count += 1;
        self.sum += tuple.value;
        self.max = self.max.max(tuple.value);
        if self.count == self.window {
            let value = match self.func {
                AggFunc::Avg => self.sum / self.count as f64,
                AggFunc::Sum => self.sum,
                AggFunc::Count => self.count as f64,
                AggFunc::Max => self.max,
            };
            // Attributed to the window-closing tuple.
            out.emit(tuple.derive(tuple.key, value));
            self.count = 0;
            self.sum = 0.0;
            self.max = f64::NEG_INFINITY;
        }
    }

    fn expected_selectivity(&self) -> f64 {
        1.0 / self.window as f64
    }
}

// ---------------------------------------------------------------------------
// Split
// ---------------------------------------------------------------------------

/// Routes each tuple to exactly one output branch by predicate
/// (branch 0 if the predicate holds, branch 1 otherwise).
pub struct Split {
    predicate: Box<dyn FnMut(&Tuple) -> bool + Send>,
    branch0_fraction: f64,
}

impl Split {
    /// Creates a split with a routing predicate; `branch0_fraction` is the
    /// expected fraction routed to branch 0, for load estimation.
    pub fn new(
        branch0_fraction: f64,
        predicate: impl FnMut(&Tuple) -> bool + Send + 'static,
    ) -> Self {
        Self {
            predicate: Box::new(predicate),
            branch0_fraction: branch0_fraction.clamp(0.0, 1.0),
        }
    }

    /// Splits on value below a threshold; with uniform values this routes
    /// a `threshold` fraction to branch 0.
    pub fn value_below(threshold: f64) -> Self {
        Self::new(threshold, move |t: &Tuple| t.value < threshold)
    }

    /// Expected fraction of input routed to branch 0.
    pub fn branch0_fraction(&self) -> f64 {
        self.branch0_fraction
    }
}

impl OperatorLogic for Split {
    fn kind(&self) -> &'static str {
        "split"
    }

    fn process(&mut self, _port: PortId, tuple: &Tuple, _now: SimTime, out: &mut OutputBuffer) {
        let branch = if (self.predicate)(tuple) { 0 } else { 1 };
        out.emit_to(branch, *tuple);
    }
}

// ---------------------------------------------------------------------------
// Dedup
// ---------------------------------------------------------------------------

/// Suppresses tuples whose key was already seen within a sliding time
/// window — the usual guard in front of expensive downstream operators.
pub struct Dedup {
    window: SimDuration,
    seen: std::collections::HashMap<u64, SimTime>,
    declared_selectivity: f64,
    last_sweep: SimTime,
}

impl Dedup {
    /// Creates a dedup with the given suppression window and a declared
    /// pass fraction for load estimation.
    pub fn new(window: SimDuration, declared_selectivity: f64) -> Self {
        assert!((0.0..=1.0).contains(&declared_selectivity));
        Self {
            window,
            seen: std::collections::HashMap::new(),
            declared_selectivity,
            last_sweep: SimTime::ZERO,
        }
    }

    /// Number of distinct keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.seen.len()
    }
}

impl OperatorLogic for Dedup {
    fn kind(&self) -> &'static str {
        "dedup"
    }

    fn process(&mut self, _port: PortId, tuple: &Tuple, now: SimTime, out: &mut OutputBuffer) {
        // Amortised sweep of expired entries once per window.
        if now - self.last_sweep > self.window {
            let w = self.window;
            self.seen.retain(|_, &mut t| now - t <= w);
            self.last_sweep = now;
        }
        match self.seen.get(&tuple.key) {
            Some(&t) if now - t <= self.window => {}
            _ => {
                self.seen.insert(tuple.key, now);
                out.emit(*tuple);
            }
        }
    }

    fn expected_selectivity(&self) -> f64 {
        self.declared_selectivity
    }
}

// ---------------------------------------------------------------------------
// Time-window aggregate
// ---------------------------------------------------------------------------

/// A tumbling **time**-window aggregate: closes a window whenever an
/// input crosses the next boundary and emits one summary tuple
/// (complementing the count-window [`Aggregate`]).
pub struct TimeAggregate {
    window: SimDuration,
    func: AggFunc,
    window_end: Option<SimTime>,
    count: u64,
    sum: f64,
    max: f64,
}

impl TimeAggregate {
    /// Creates a time-window aggregate.
    pub fn new(window: SimDuration, func: AggFunc) -> Self {
        assert!(window.as_micros() > 0);
        Self {
            window,
            func,
            window_end: None,
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    fn emit_window(&mut self, tuple: &Tuple, out: &mut OutputBuffer) {
        if self.count == 0 {
            return;
        }
        let value = match self.func {
            AggFunc::Avg => self.sum / self.count as f64,
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as f64,
            AggFunc::Max => self.max,
        };
        out.emit(tuple.derive(tuple.key, value));
        self.count = 0;
        self.sum = 0.0;
        self.max = f64::NEG_INFINITY;
    }
}

impl OperatorLogic for TimeAggregate {
    fn kind(&self) -> &'static str {
        "time-aggregate"
    }

    fn process(&mut self, _port: PortId, tuple: &Tuple, now: SimTime, out: &mut OutputBuffer) {
        let end = *self.window_end.get_or_insert(now + self.window);
        if now >= end {
            // Close the previous window (attributed to the tuple that
            // crossed the boundary) and start the next.
            self.emit_window(tuple, out);
            // Advance the boundary past `now` in whole windows.
            let mut e = end;
            while e <= now {
                e += self.window;
            }
            self.window_end = Some(e);
        }
        self.count += 1;
        self.sum += tuple.value;
        self.max = self.max.max(tuple.value);
    }

    fn expected_selectivity(&self) -> f64 {
        // Unknown without an arrival rate; assume sparse windows (one out
        // per handful of inputs) for load purposes.
        0.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::RootId;

    fn t(key: u64, value: f64) -> Tuple {
        Tuple::new(RootId(0), SimTime::ZERO, key, value)
    }

    fn run(op: &mut dyn OperatorLogic, port: PortId, tuple: Tuple, now: SimTime) -> Vec<Tuple> {
        let mut out = OutputBuffer::new();
        op.process(port, &tuple, now, &mut out);
        out.items.into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn filter_passes_and_drops() {
        let mut f = Filter::value_below(0.5);
        assert_eq!(run(&mut f, 0, t(1, 0.2), SimTime::ZERO).len(), 1);
        assert_eq!(run(&mut f, 0, t(1, 0.9), SimTime::ZERO).len(), 0);
        assert!((f.expected_selectivity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn filter_key_mod_selectivity() {
        let mut f = Filter::key_mod(4, 1);
        let passed: usize = (0..100)
            .map(|k| run(&mut f, 0, t(k, 0.0), SimTime::ZERO).len())
            .sum();
        assert_eq!(passed, 25);
    }

    #[test]
    fn map_transforms_and_preserves_root() {
        let mut m = Map::scale(2.0);
        let input = Tuple::new(RootId(42), SimTime(5), 3, 1.5);
        let out = run(&mut m, 0, input, SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 3.0);
        assert_eq!(out[0].root, RootId(42));
        assert_eq!(out[0].arrival, SimTime(5));
    }

    #[test]
    fn union_merges_both_ports() {
        let mut u = Union;
        assert_eq!(run(&mut u, 0, t(1, 1.0), SimTime::ZERO).len(), 1);
        assert_eq!(run(&mut u, 1, t(2, 2.0), SimTime::ZERO).len(), 1);
        assert_eq!(u.ports(), 2);
    }

    #[test]
    fn join_matches_on_key_within_window() {
        let mut j = WindowJoin::new(WindowSpec::Time(crate::time::millis(100)), 0.1);
        // Left tuple arrives, no match yet.
        assert!(run(&mut j, 0, t(7, 1.0), SimTime(0)).is_empty());
        // Right tuple with same key joins.
        let out = run(&mut j, 1, t(7, 2.0), SimTime(1000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 3.0);
        // Different key: no join.
        assert!(run(&mut j, 1, t(8, 2.0), SimTime(2000)).is_empty());
    }

    #[test]
    fn join_evicts_expired_tuples() {
        let mut j = WindowJoin::new(WindowSpec::Time(crate::time::millis(10)), 0.1);
        run(&mut j, 0, t(7, 1.0), SimTime(0));
        // 20 ms later the left tuple is out of the window.
        let out = run(&mut j, 1, t(7, 2.0), SimTime(20_000));
        assert!(out.is_empty());
        assert_eq!(j.window_len(0), 0);
    }

    #[test]
    fn join_count_window_caps_buffer() {
        let mut j = WindowJoin::new(WindowSpec::Count(2), 0.1);
        for i in 0..5 {
            run(&mut j, 0, t(i, 1.0), SimTime(i * 10));
        }
        assert_eq!(j.window_len(0), 2);
    }

    #[test]
    fn join_output_attributed_to_probe() {
        let mut j = WindowJoin::new(WindowSpec::Count(10), 0.1);
        let left = Tuple::new(RootId(1), SimTime(0), 5, 1.0);
        let right = Tuple::new(RootId(2), SimTime(100), 5, 2.0);
        run(&mut j, 0, left, SimTime(0));
        let out = run(&mut j, 1, right, SimTime(100));
        assert_eq!(out[0].root, RootId(2));
    }

    #[test]
    fn aggregate_tumbling_avg() {
        let mut a = Aggregate::new(3, AggFunc::Avg);
        assert!(run(&mut a, 0, t(1, 1.0), SimTime::ZERO).is_empty());
        assert!(run(&mut a, 0, t(1, 2.0), SimTime::ZERO).is_empty());
        let out = run(&mut a, 0, t(1, 6.0), SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert!((out[0].value - 3.0).abs() < 1e-12);
        // Window resets.
        assert!(run(&mut a, 0, t(1, 1.0), SimTime::ZERO).is_empty());
    }

    #[test]
    fn aggregate_functions() {
        for (func, want) in [
            (AggFunc::Sum, 9.0),
            (AggFunc::Count, 3.0),
            (AggFunc::Max, 6.0),
        ] {
            let mut a = Aggregate::new(3, func);
            run(&mut a, 0, t(1, 1.0), SimTime::ZERO);
            run(&mut a, 0, t(1, 2.0), SimTime::ZERO);
            let out = run(&mut a, 0, t(1, 6.0), SimTime::ZERO);
            assert_eq!(out[0].value, want, "{func:?}");
        }
        assert!((Aggregate::new(4, AggFunc::Avg).expected_selectivity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn split_routes_by_predicate() {
        let mut s = Split::value_below(0.5);
        let mut out = OutputBuffer::new();
        s.process(0, &t(1, 0.2), SimTime::ZERO, &mut out);
        s.process(0, &t(1, 0.8), SimTime::ZERO, &mut out);
        assert_eq!(out.items[0].0, Some(0));
        assert_eq!(out.items[1].0, Some(1));
    }

    #[test]
    fn dedup_suppresses_within_window() {
        let mut d = Dedup::new(crate::time::millis(100), 0.5);
        assert_eq!(run(&mut d, 0, t(7, 1.0), SimTime(0)).len(), 1);
        // Same key, inside the window: suppressed.
        assert_eq!(run(&mut d, 0, t(7, 2.0), SimTime(50_000)).len(), 0);
        // Different key passes.
        assert_eq!(run(&mut d, 0, t(8, 1.0), SimTime(60_000)).len(), 1);
        // Same key after expiry passes again.
        assert_eq!(run(&mut d, 0, t(7, 3.0), SimTime(200_000)).len(), 1);
        assert!(d.tracked_keys() >= 1);
    }

    #[test]
    fn dedup_sweeps_expired_keys() {
        let mut d = Dedup::new(crate::time::millis(10), 0.5);
        for k in 0..100 {
            run(&mut d, 0, t(k, 1.0), SimTime(k * 1000));
        }
        // 100 ms later a sweep is triggered by the next tuple.
        run(&mut d, 0, t(999, 1.0), SimTime(500_000));
        assert!(d.tracked_keys() < 100, "tracked {}", d.tracked_keys());
    }

    #[test]
    fn time_aggregate_closes_windows_on_boundaries() {
        let mut a = TimeAggregate::new(crate::time::millis(100), AggFunc::Sum);
        // Window 1: three tuples.
        assert!(run(&mut a, 0, t(1, 1.0), SimTime(0)).is_empty());
        assert!(run(&mut a, 0, t(1, 2.0), SimTime(40_000)).is_empty());
        assert!(run(&mut a, 0, t(1, 3.0), SimTime(80_000)).is_empty());
        // First tuple past the boundary closes the window: sum = 6.
        let out = run(&mut a, 0, t(1, 10.0), SimTime(120_000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 6.0);
        // Next boundary: only the 10.0 tuple was in window 2.
        let out = run(&mut a, 0, t(1, 0.5), SimTime(230_000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 10.0);
    }

    #[test]
    fn time_aggregate_skips_empty_windows() {
        let mut a = TimeAggregate::new(crate::time::millis(10), AggFunc::Count);
        run(&mut a, 0, t(1, 1.0), SimTime(0));
        // A long gap spans many empty windows; exactly one summary (count
        // = 1) is emitted for the window that had data.
        let out = run(&mut a, 0, t(1, 1.0), SimTime(1_000_000));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 1.0);
    }

    #[test]
    fn output_buffer_reuse() {
        let mut out = OutputBuffer::new();
        out.emit(t(1, 1.0));
        assert_eq!(out.len(), 1);
        assert!(!out.is_empty());
        out.clear();
        assert!(out.is_empty());
    }
}
