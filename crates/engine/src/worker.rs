//! Shared worker/supervisor machinery for the real-time data planes.
//!
//! Extracted from [`rt`](crate::rt) so the single-worker [`RtEngine`]
//! and the sharded engine in [`shard`](crate::shard) run the *same*
//! worker implementation: a batch drain loop over the shard's ingress
//! ring ([`SpscRing`]) with in-queue shed budget, per-tuple delay
//! accounting against a target, a measured per-tuple cost EWMA (the
//! per-shard cost model), and panic-catch-and-restart supervision that
//! loses only the tuple being processed.
//!
//! The worker pops up to [`WORKER_POP_BATCH`] stamps per ring operation
//! into a [`PendingBatch`] that is owned by the *supervisor* loop, not
//! the worker iteration: the batch cursor advances before each tuple is
//! processed, so a panic mid-batch poisons exactly one tuple and the
//! restarted loop resumes with the remainder of the batch intact.
//!
//! [`RtEngine`]: crate::rt::RtEngine

use crate::ring::SpscRing;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a worker burns the per-tuple service time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// `thread::sleep` for the service time — yields the CPU, so N
    /// sleeping shards overlap even on one core. The right model when
    /// the "work" stands in for I/O or a downstream call.
    #[default]
    Sleep,
    /// Busy-spin for the service time — holds the CPU, so aggregate
    /// throughput scales with *cores*, not shards. The right model for
    /// CPU-bound operator work and for scaling benchmarks.
    Spin,
}

/// Configuration of one supervised worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Nominal CPU work per tuple (before the headroom tax).
    pub cost: Duration,
    /// Headroom factor `H`: the worker inflates the per-tuple service
    /// time by `1/H`.
    pub headroom: f64,
    /// Delay target for violation accounting.
    pub target_delay: Duration,
    /// Fault injection: panic while processing the n-th tuple this
    /// worker sees (1-based, counted locally). The supervisor must catch
    /// it, restart the loop, and lose only that tuple.
    pub panic_on_tuple: Option<u64>,
    /// How the service time is consumed.
    pub cost_model: CostModel,
    /// Pin the worker thread to this CPU (best effort; silently ignored
    /// where unsupported).
    pub pin_core: Option<usize>,
    /// Span recorder for the latency truth plane. When set, the worker
    /// closes sampled sojourns (stamps carrying
    /// [`SAMPLE_BIT`](crate::spans::SAMPLE_BIT)) into `ring_wait` /
    /// `execute` / sojourn histograms at retirement. `None` costs
    /// nothing beyond one branch per tuple.
    pub spans: Option<crate::spans::SpanHandle>,
}

/// Maximum stamps a worker pops from its ring per ring operation.
pub const WORKER_POP_BATCH: usize = 256;

/// A popped-but-not-yet-processed run of stamps. Owned by the supervisor
/// so a panic mid-batch loses only the tuple whose cursor was already
/// advanced; the restarted loop drains the rest.
#[derive(Debug)]
pub struct PendingBatch {
    buf: [u64; WORKER_POP_BATCH],
    next: usize,
    len: usize,
}

impl Default for PendingBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl PendingBatch {
    /// An empty pending batch.
    pub fn new() -> Self {
        Self {
            buf: [0; WORKER_POP_BATCH],
            next: 0,
            len: 0,
        }
    }
}

/// EWMA smoothing for the measured per-tuple cost (single writer — the
/// worker thread — so a relaxed load/store pair suffices).
const COST_EWMA_LAMBDA: f64 = 0.2;

/// Per-worker counters, shared between the worker thread, the front
/// door that feeds it, and the controller that reads it.
///
/// All fields are relaxed atomics: they are statistics, not
/// synchronization. The invariant the stress tests assert is that every
/// tuple successfully pushed to the worker's ring ends up in exactly one
/// of `completed`, `dropped_shed`, or is the single tuple lost to one of
/// `worker_panics`.
#[derive(Debug)]
pub struct WorkerStats {
    /// Tuples currently queued (incremented by the sender on a
    /// successful push, decremented by the worker as it takes each tuple
    /// up for processing).
    pub queue_len: AtomicU64,
    /// Tuples the worker started processing (including panicked ones).
    pub processed: AtomicU64,
    /// Tuples fully processed.
    pub completed: AtomicU64,
    /// Tuples dropped by consuming in-queue shed budget.
    pub dropped_shed: AtomicU64,
    /// In-queue shed budget outstanding, tuples.
    pub shed_budget: AtomicU64,
    /// Panics caught and recovered from (one tuple lost each).
    pub worker_panics: AtomicU64,
    /// Σ delay of completed tuples, µs.
    pub delay_sum_us: AtomicU64,
    /// Maximum observed delay, µs.
    pub delay_max_us: AtomicU64,
    /// Completed tuples whose delay exceeded the target.
    pub delayed: AtomicU64,
    /// Σ (delay − target)⁺ over completed tuples, µs.
    pub violation_sum_us: AtomicU64,
    /// Measured per-tuple *work* cost EWMA, µs, as f64 bits
    /// (`NaN` until the first tuple completes). This is the worker's
    /// local cost model; the global controller aggregates these.
    pub cost_ewma_bits: AtomicU64,
}

impl Default for WorkerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerStats {
    /// Fresh, all-zero counters (cost EWMA starts at `NaN`).
    pub fn new() -> Self {
        Self {
            queue_len: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            dropped_shed: AtomicU64::new(0),
            shed_budget: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            delay_sum_us: AtomicU64::new(0),
            delay_max_us: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            violation_sum_us: AtomicU64::new(0),
            cost_ewma_bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// The measured per-tuple work cost EWMA, µs (`NaN` before the first
    /// completion).
    pub fn cost_ewma_us(&self) -> f64 {
        f64::from_bits(self.cost_ewma_bits.load(Ordering::Relaxed))
    }

    /// Mean delay of this worker's completed tuples so far, milliseconds
    /// (0 before any completion). The per-period *delta* mean the
    /// controller consumes is computed from counter deltas instead; this
    /// cumulative form is what reports and per-shard stats need.
    pub fn mean_delay_ms(&self) -> f64 {
        let completed = self.completed.load(Ordering::Relaxed);
        if completed == 0 {
            0.0
        } else {
            self.delay_sum_us.load(Ordering::Relaxed) as f64 / completed as f64 / 1e3
        }
    }

    /// Folds one measured work-cost sample (µs) into the EWMA. Single
    /// writer: only the worker thread calls this.
    fn update_cost_ewma(&self, sample_us: f64) {
        let prev = self.cost_ewma_us();
        let next = if prev.is_finite() {
            prev + COST_EWMA_LAMBDA * (sample_us - prev)
        } else {
            sample_us
        };
        self.cost_ewma_bits.store(next.to_bits(), Ordering::Relaxed);
    }

    /// Atomically consumes one unit of shed budget; `true` if a unit was
    /// available.
    fn try_consume_shed_budget(&self) -> bool {
        let mut budget = self.shed_budget.load(Ordering::Relaxed);
        while budget > 0 {
            match self.shed_budget.compare_exchange_weak(
                budget,
                budget - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(b) => budget = b,
            }
        }
        false
    }

    /// Delay/violation accounting for one completed tuple.
    #[inline]
    fn record_completion(&self, delay_us: u64, target_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.delay_sum_us.fetch_add(delay_us, Ordering::Relaxed);
        self.delay_max_us.fetch_max(delay_us, Ordering::Relaxed);
        if delay_us > target_us {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            self.violation_sum_us
                .fetch_add(delay_us - target_us, Ordering::Relaxed);
        }
    }
}

/// One worker lifetime: drains the pending batch, then the ring, until
/// the ring closes and empties. Extracted so a panicking iteration can
/// be caught and the loop restarted without losing the rest of the
/// popped batch (which lives in `pending`, owned by the supervisor).
pub fn worker_loop(
    stats: &WorkerStats,
    ring: &SpscRing,
    cfg: &WorkerConfig,
    pending: &mut PendingBatch,
) {
    let service = cfg.cost.mul_f64(1.0 / cfg.headroom);
    let target_us = cfg.target_delay.as_micros() as u64;
    // Zero-cost workers (throughput microbenches) take one clock reading
    // per popped batch rather than two per tuple; with a real service
    // time the per-tuple readings are needed for the cost EWMA anyway
    // and delay must be measured at each tuple's own completion.
    let zero_cost = service.is_zero();
    let epoch = ring.epoch();
    loop {
        if pending.next >= pending.len {
            let n = ring.pop_wait(&mut pending.buf);
            if n == 0 {
                return; // closed and drained
            }
            pending.len = n;
            pending.next = 0;
        }
        let batch_now_ns =
            if zero_cost { Instant::now().duration_since(epoch).as_nanos() as u64 } else { 0 };
        while pending.next < pending.len {
            let raw = pending.buf[pending.next];
            // Strip the sojourn-sampling mark before any delay
            // arithmetic; a sampled tuple that gets shed below simply
            // loses its sample (sampling is statistical, not a ledger).
            let sampled = raw & crate::spans::SAMPLE_BIT != 0;
            let stamp = raw & !crate::spans::SAMPLE_BIT;
            // Advance the cursor *before* processing: a panic below
            // loses exactly this tuple.
            pending.next += 1;
            stats.queue_len.fetch_sub(1, Ordering::Relaxed);
            let nth = stats.processed.fetch_add(1, Ordering::Relaxed) + 1;
            if cfg.panic_on_tuple == Some(nth) {
                panic!("injected worker fault at tuple {nth}");
            }
            // In-queue shedding: consume budget instead of work.
            if stats.try_consume_shed_budget() {
                stats.dropped_shed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if zero_cost {
                let delay_us = batch_now_ns.saturating_sub(stamp) / 1_000;
                stats.record_completion(delay_us, target_us);
                if sampled {
                    if let Some(spans) = &cfg.spans {
                        let sojourn_ns = batch_now_ns.saturating_sub(stamp);
                        spans.record(crate::spans::Stage::RingWait, sojourn_ns);
                        spans.record(crate::spans::Stage::Execute, 0);
                        spans.record_sojourn(sojourn_ns);
                    }
                }
                continue;
            }
            let t0 = Instant::now();
            match cfg.cost_model {
                CostModel::Sleep => std::thread::sleep(service),
                CostModel::Spin => {
                    while t0.elapsed() < service {
                        std::hint::spin_loop();
                    }
                }
            }
            let done = Instant::now();
            // The measured sample is the *work* share of the service
            // span (undo the 1/H inflation), which is what shed-budget
            // conversions and the controller's c(k) estimator consume.
            stats.update_cost_ewma(done.duration_since(t0).as_secs_f64() * cfg.headroom * 1e6);
            let done_ns = done.duration_since(epoch).as_nanos() as u64;
            let delay_us = done_ns.saturating_sub(stamp) / 1_000;
            stats.record_completion(delay_us, target_us);
            if sampled {
                if let Some(spans) = &cfg.spans {
                    // Close the sampled sojourn: stamp → batch start is
                    // ring residency, batch start → retirement is
                    // execution, and their concatenation is the
                    // end-to-end sojourn.
                    let t0_ns = t0.duration_since(epoch).as_nanos() as u64;
                    spans.record(crate::spans::Stage::RingWait, t0_ns.saturating_sub(stamp));
                    spans.record(crate::spans::Stage::Execute, done_ns.saturating_sub(t0_ns));
                    spans.record_sojourn(done_ns.saturating_sub(stamp));
                }
            }
        }
    }
}

/// Spawns a worker thread under panic supervision: a panic inside an
/// iteration (e.g. an injected fault) is caught, counted in
/// [`WorkerStats::worker_panics`], and the loop restarted against the
/// same ring and the same pending batch — only the tuple being processed
/// is lost. A clean return means the ring closed and drained: shutdown.
pub fn spawn_supervised(
    stats: Arc<WorkerStats>,
    ring: Arc<SpscRing>,
    cfg: WorkerConfig,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        if let Some(core) = cfg.pin_core {
            let _ = crate::affinity::pin_current_thread(core);
        }
        let mut pending = PendingBatch::new();
        loop {
            match catch_unwind(AssertUnwindSafe(|| {
                worker_loop(&stats, &ring, &cfg, &mut pending)
            })) {
                Ok(()) => break,
                Err(_) => {
                    stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Push;

    fn cfg() -> WorkerConfig {
        WorkerConfig {
            cost: Duration::from_micros(100),
            headroom: 1.0,
            target_delay: Duration::from_millis(50),
            panic_on_tuple: None,
            cost_model: CostModel::Sleep,
            pin_core: None,
            spans: None,
        }
    }

    fn feed(ring: &SpscRing, stats: &WorkerStats, n: usize) {
        assert_eq!(ring.push_repeat(ring.stamp_now(), n), Push::Pushed(n));
        stats.queue_len.fetch_add(n as u64, Ordering::Relaxed);
    }

    #[test]
    fn drains_and_completes() {
        let stats = Arc::new(WorkerStats::new());
        let ring = Arc::new(SpscRing::new(64));
        let handle = spawn_supervised(Arc::clone(&stats), Arc::clone(&ring), cfg());
        feed(&ring, &stats, 10);
        ring.close();
        handle.join().unwrap();
        assert_eq!(stats.completed.load(Ordering::Relaxed), 10);
        assert_eq!(stats.queue_len.load(Ordering::Relaxed), 0);
        assert!(stats.cost_ewma_us().is_finite());
        assert!(stats.cost_ewma_us() > 50.0, "{}", stats.cost_ewma_us());
    }

    #[test]
    fn sampled_stamps_close_spans_at_retirement() {
        use crate::spans::{SpanRegistry, Stage, SAMPLE_BIT};
        let reg = SpanRegistry::new();
        let stats = Arc::new(WorkerStats::new());
        let ring = Arc::new(SpscRing::new(64));
        let mut c = cfg();
        c.spans = Some(reg.handle("0"));
        let handle = spawn_supervised(Arc::clone(&stats), Arc::clone(&ring), c);
        // 7 plain tuples + 1 sampled (bit 63 on the stamp).
        assert_eq!(ring.push_repeat(ring.stamp_now(), 7), Push::Pushed(7));
        assert_eq!(ring.push(ring.stamp_now() | SAMPLE_BIT), Push::Pushed(1));
        stats.queue_len.fetch_add(8, Ordering::Relaxed);
        ring.close();
        handle.join().unwrap();
        assert_eq!(stats.completed.load(Ordering::Relaxed), 8);
        let snap = reg.snapshot();
        assert_eq!(snap.sojourn.count(), 1);
        assert_eq!(snap.stages[Stage::RingWait.index()].count(), 1);
        assert_eq!(snap.stages[Stage::Execute.index()].count(), 1);
        // The sampled sojourn is sane: at least the ~100 µs service
        // time, and the delay ledger was not corrupted by the mark bit
        // (delays stay far below a second).
        assert!(snap.sojourn.max() >= 50_000, "{}", snap.sojourn.max());
        assert!(stats.delay_max_us.load(Ordering::Relaxed) < 1_000_000);
    }

    #[test]
    fn panic_restart_loses_exactly_one_tuple() {
        let stats = Arc::new(WorkerStats::new());
        let ring = Arc::new(SpscRing::new(64));
        let mut c = cfg();
        c.panic_on_tuple = Some(3);
        let handle = spawn_supervised(Arc::clone(&stats), Arc::clone(&ring), c);
        feed(&ring, &stats, 8);
        ring.close();
        handle.join().unwrap();
        assert_eq!(stats.worker_panics.load(Ordering::Relaxed), 1);
        assert_eq!(stats.completed.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn panic_mid_batch_preserves_rest_of_popped_batch() {
        // All 8 tuples are pushed in one batch (and popped in one batch);
        // the panic on tuple 3 must not lose the batch remainder.
        let stats = Arc::new(WorkerStats::new());
        let ring = Arc::new(SpscRing::new(64));
        feed(&ring, &stats, 8);
        ring.close();
        let mut c = cfg();
        c.panic_on_tuple = Some(3);
        let handle = spawn_supervised(Arc::clone(&stats), Arc::clone(&ring), c);
        handle.join().unwrap();
        assert_eq!(stats.worker_panics.load(Ordering::Relaxed), 1);
        assert_eq!(stats.completed.load(Ordering::Relaxed), 7);
        assert_eq!(stats.queue_len.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shed_budget_consumes_instead_of_working() {
        let stats = Arc::new(WorkerStats::new());
        stats.shed_budget.store(5, Ordering::Relaxed);
        let ring = Arc::new(SpscRing::new(64));
        let handle = spawn_supervised(Arc::clone(&stats), Arc::clone(&ring), cfg());
        feed(&ring, &stats, 5);
        ring.close();
        handle.join().unwrap();
        assert_eq!(stats.dropped_shed.load(Ordering::Relaxed), 5);
        assert_eq!(stats.completed.load(Ordering::Relaxed), 0);
        assert_eq!(stats.shed_budget.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn spin_model_burns_wall_clock() {
        let stats = Arc::new(WorkerStats::new());
        let ring = Arc::new(SpscRing::new(64));
        let mut c = cfg();
        c.cost_model = CostModel::Spin;
        c.cost = Duration::from_micros(500);
        let handle = spawn_supervised(Arc::clone(&stats), Arc::clone(&ring), c);
        let t0 = Instant::now();
        feed(&ring, &stats, 10);
        ring.close();
        handle.join().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(stats.completed.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_cost_fast_path_still_accounts_delay() {
        let stats = Arc::new(WorkerStats::new());
        let ring = Arc::new(SpscRing::new(64));
        let mut c = cfg();
        c.cost = Duration::ZERO;
        // Back-date the stamps by ~5 ms so delays are visibly nonzero.
        let stamp = ring.stamp_now();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(ring.push_repeat(stamp, 10), Push::Pushed(10));
        stats.queue_len.fetch_add(10, Ordering::Relaxed);
        ring.close();
        let handle = spawn_supervised(Arc::clone(&stats), Arc::clone(&ring), c);
        handle.join().unwrap();
        assert_eq!(stats.completed.load(Ordering::Relaxed), 10);
        assert!(stats.delay_sum_us.load(Ordering::Relaxed) >= 10 * 4_000);
        // No cost sample is taken on the zero-cost path.
        assert!(stats.cost_ewma_us().is_nan());
    }
}
