//! Time-varying processing-cost schedules.
//!
//! The paper's Fig. 14 drives experiments with a per-tuple cost that
//! varies over time (operator selectivity drift, query add/remove). The
//! engine models this as a piecewise-constant *multiplier* applied to
//! every operator's base cost.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A piecewise-constant cost multiplier over simulated time.
///
/// The multiplier at time `t` is the value of the last point at or before
/// `t`; before the first point it is 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostSchedule {
    points: Vec<(SimTime, f64)>,
}

impl CostSchedule {
    /// A constant multiplier of 1 (costs never change).
    pub fn constant() -> Self {
        Self { points: Vec::new() }
    }

    /// A constant multiplier of `m`.
    pub fn constant_multiplier(m: f64) -> Self {
        assert!(m > 0.0 && m.is_finite());
        Self {
            points: vec![(SimTime::ZERO, m)],
        }
    }

    /// Builds a schedule from `(time, multiplier)` breakpoints. Points are
    /// sorted by time; multipliers must be positive and finite.
    pub fn from_points(mut points: Vec<(SimTime, f64)>) -> Self {
        assert!(
            points.iter().all(|&(_, m)| m > 0.0 && m.is_finite()),
            "multipliers must be positive and finite"
        );
        points.sort_by_key(|&(t, _)| t);
        Self { points }
    }

    /// The multiplier in effect at `t`.
    pub fn multiplier(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => self.points[i].1,
            Err(0) => 1.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the schedule is the constant-1 schedule.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl Default for CostSchedule {
    fn default() -> Self {
        Self::constant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn constant_is_one_everywhere() {
        let s = CostSchedule::constant();
        assert_eq!(s.multiplier(SimTime::ZERO), 1.0);
        assert_eq!(s.multiplier(SimTime(u64::MAX)), 1.0);
        assert!(s.is_empty());
    }

    #[test]
    fn piecewise_lookup() {
        let s = CostSchedule::from_points(vec![
            (SimTime::ZERO + secs(10), 2.0),
            (SimTime::ZERO + secs(5), 1.5),
        ]);
        assert_eq!(s.multiplier(SimTime::ZERO), 1.0); // before first point
        assert_eq!(s.multiplier(SimTime::ZERO + secs(5)), 1.5); // exact hit
        assert_eq!(s.multiplier(SimTime::ZERO + secs(7)), 1.5);
        assert_eq!(s.multiplier(SimTime::ZERO + secs(10)), 2.0);
        assert_eq!(s.multiplier(SimTime::ZERO + secs(100)), 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_multiplier() {
        let _ = CostSchedule::from_points(vec![(SimTime::ZERO, 0.0)]);
    }
}
