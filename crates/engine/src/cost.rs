//! Time-varying processing-cost schedules.
//!
//! The paper's Fig. 14 drives experiments with a per-tuple cost that
//! varies over time (operator selectivity drift, query add/remove). The
//! engine models this as a piecewise-constant *multiplier* applied to
//! every operator's base cost.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A piecewise-constant cost multiplier over simulated time.
///
/// The multiplier at time `t` is the value of the last point at or before
/// `t`; before the first point it is 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostSchedule {
    points: Vec<(SimTime, f64)>,
}

impl CostSchedule {
    /// A constant multiplier of 1 (costs never change).
    pub fn constant() -> Self {
        Self { points: Vec::new() }
    }

    /// A constant multiplier of `m`.
    pub fn constant_multiplier(m: f64) -> Self {
        assert!(m > 0.0 && m.is_finite());
        Self {
            points: vec![(SimTime::ZERO, m)],
        }
    }

    /// Builds a schedule from `(time, multiplier)` breakpoints. Points are
    /// sorted by time; multipliers must be positive and finite.
    pub fn from_points(mut points: Vec<(SimTime, f64)>) -> Self {
        assert!(
            points.iter().all(|&(_, m)| m > 0.0 && m.is_finite()),
            "multipliers must be positive and finite"
        );
        points.sort_by_key(|&(t, _)| t);
        Self { points }
    }

    /// The multiplier in effect at `t`.
    pub fn multiplier(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => self.points[i].1,
            Err(0) => 1.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The multiplier in effect at `t` together with the first instant at
    /// which it may change (exclusive). Lets hot paths cache per-segment
    /// derived values and re-query only when the clock crosses the
    /// returned boundary.
    pub fn segment(&self, t: SimTime) -> (f64, SimTime) {
        let next = |i: usize| {
            self.points
                .get(i)
                .map(|&(pt, _)| pt)
                .unwrap_or(SimTime(u64::MAX))
        };
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => (self.points[i].1, next(i + 1)),
            Err(0) => (1.0, next(0)),
            Err(i) => (self.points[i - 1].1, next(i)),
        }
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the schedule is the constant-1 schedule.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl Default for CostSchedule {
    fn default() -> Self {
        Self::constant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn constant_is_one_everywhere() {
        let s = CostSchedule::constant();
        assert_eq!(s.multiplier(SimTime::ZERO), 1.0);
        assert_eq!(s.multiplier(SimTime(u64::MAX)), 1.0);
        assert!(s.is_empty());
    }

    #[test]
    fn piecewise_lookup() {
        let s = CostSchedule::from_points(vec![
            (SimTime::ZERO + secs(10), 2.0),
            (SimTime::ZERO + secs(5), 1.5),
        ]);
        assert_eq!(s.multiplier(SimTime::ZERO), 1.0); // before first point
        assert_eq!(s.multiplier(SimTime::ZERO + secs(5)), 1.5); // exact hit
        assert_eq!(s.multiplier(SimTime::ZERO + secs(7)), 1.5);
        assert_eq!(s.multiplier(SimTime::ZERO + secs(10)), 2.0);
        assert_eq!(s.multiplier(SimTime::ZERO + secs(100)), 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_multiplier() {
        let _ = CostSchedule::from_points(vec![(SimTime::ZERO, 0.0)]);
    }

    #[test]
    fn segment_agrees_with_multiplier() {
        let s = CostSchedule::from_points(vec![
            (SimTime::ZERO + secs(5), 1.5),
            (SimTime::ZERO + secs(10), 2.0),
        ]);
        for t in [0u64, 4_999_999, 5_000_000, 7_000_000, 10_000_000, 99_000_000] {
            let t = SimTime(t);
            let (m, until) = s.segment(t);
            assert_eq!(m, s.multiplier(t), "multiplier mismatch at {t}");
            assert!(until > t, "segment end must be in the future at {t}");
            // The multiplier is constant right up to the boundary.
            if until.0 != u64::MAX {
                assert_eq!(s.multiplier(SimTime(until.0 - 1)), m);
                assert_ne!(s.multiplier(until), m);
            }
        }
        // The constant schedule never changes.
        let c = CostSchedule::constant();
        assert_eq!(c.segment(SimTime::ZERO), (1.0, SimTime(u64::MAX)));
    }
}
