//! The engine ↔ controller interface.
//!
//! The engine is control-agnostic: at every control-period boundary it
//! hands a [`PeriodSnapshot`] to a [`ControlHook`] and applies the returned
//! [`Decision`]. The monitor/controller/actuator of Fig. 3 in the paper
//! live behind this trait (implemented in `streamshed-control`).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Everything the monitor can observe about the k-th control period.
///
/// Note that *true* per-tuple delays are deliberately exposed only as the
/// delayed measurement `mean_delay_ms` of tuples that **departed** this
/// period — the paper's point (§4.5.1) is that the delay of *current*
/// arrivals is unmeasurable in real time, so controllers should rely on
/// the virtual queue length `outstanding` instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodSnapshot {
    /// Discrete period index `k` (the period that just ended).
    pub k: u64,
    /// Simulated time at the boundary.
    pub now: SimTime,
    /// Control period length `T`.
    pub period: SimDuration,
    /// Tuples that arrived at the network buffer this period (pre-shed).
    pub offered: u64,
    /// Tuples admitted past the entry shedder this period.
    pub admitted: u64,
    /// Tuples dropped by the entry shedder this period.
    pub dropped_entry: u64,
    /// Tuples dropped from in-network queues this period.
    pub dropped_network: u64,
    /// Roots that departed the network this period (`fout`).
    pub completed: u64,
    /// Virtual queue length `q(k)`: roots still outstanding at the
    /// boundary.
    pub outstanding: u64,
    /// Total tuples sitting in operator queues at the boundary (≥ the
    /// number of outstanding roots when operators fan out).
    pub queued_tuples: u64,
    /// Expected remaining CPU load of all queued tuples, µs.
    pub queued_load_us: f64,
    /// Measured mean CPU cost per *completed root* this period, µs
    /// (`None` if nothing completed). This is the Borealis-statistics
    /// analogue the controller's `c(k)` estimator consumes.
    pub measured_cost_us: Option<f64>,
    /// Mean true delay (ms) of roots that departed this period (`None` if
    /// nothing departed). A *delayed* measurement — see type docs.
    pub mean_delay_ms: Option<f64>,
    /// CPU work executed this period, µs (excludes the headroom tax).
    pub cpu_busy_us: u64,
}

impl PeriodSnapshot {
    /// Offered arrival rate `fin` in tuples/second.
    pub fn fin_rate(&self) -> f64 {
        self.offered as f64 / self.period.as_secs_f64()
    }

    /// Departure rate `fout` in tuples/second.
    pub fn fout_rate(&self) -> f64 {
        self.completed as f64 / self.period.as_secs_f64()
    }

    /// Fraction of offered tuples dropped this period (all shedders).
    pub fn drop_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.dropped_entry + self.dropped_network) as f64 / self.offered as f64
        }
    }
}

/// The actuator command for the next control period.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Decision {
    /// Probability the entry shedder drops each arriving tuple
    /// (the paper's shedding factor `α`, Eq. 13). Clamped to `[0, 1]`.
    pub entry_drop_prob: f64,
    /// Optional per-entry drop probabilities for heterogeneous stream
    /// priorities (the paper's future-work item). Entry `i` uses
    /// `per_entry_drop_prob[i % len]`; when `None`, every entry uses
    /// [`Self::entry_drop_prob`].
    pub per_entry_drop_prob: Option<Vec<f64>>,
    /// CPU load (µs) to shed immediately from in-network queues
    /// (the paper's `Ls`, §4.5.2). Zero for entry-only shedding.
    pub shed_load_us: f64,
}

impl Decision {
    /// No shedding at all.
    pub const NONE: Decision = Decision {
        entry_drop_prob: 0.0,
        per_entry_drop_prob: None,
        shed_load_us: 0.0,
    };

    /// Entry-shedding only, with drop probability `alpha`.
    pub fn entry(alpha: f64) -> Decision {
        Decision {
            entry_drop_prob: alpha,
            per_entry_drop_prob: None,
            shed_load_us: 0.0,
        }
    }

    /// Per-entry (priority-aware) entry shedding.
    pub fn per_entry(alphas: Vec<f64>) -> Decision {
        assert!(!alphas.is_empty(), "need at least one entry probability");
        Decision {
            entry_drop_prob: 0.0,
            per_entry_drop_prob: Some(alphas),
            shed_load_us: 0.0,
        }
    }

    /// In-network shedding of `load_us` of queued work.
    pub fn network(load_us: f64) -> Decision {
        Decision {
            entry_drop_prob: 0.0,
            per_entry_drop_prob: None,
            shed_load_us: load_us,
        }
    }

    /// The drop probability in force for a given entry index.
    pub fn drop_prob_for_entry(&self, entry: usize) -> f64 {
        match &self.per_entry_drop_prob {
            Some(v) if !v.is_empty() => v[entry % v.len()].clamp(0.0, 1.0),
            _ => self.entry_drop_prob.clamp(0.0, 1.0),
        }
    }
}

/// A load-shedding strategy driven once per control period.
pub trait ControlHook {
    /// Called at each period boundary with the period that just ended;
    /// returns the actuation for the next period.
    fn on_period(&mut self, snapshot: &PeriodSnapshot) -> Decision;
}

/// The null strategy: admit everything (used for system identification).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoShedding;

impl ControlHook for NoShedding {
    fn on_period(&mut self, _snapshot: &PeriodSnapshot) -> Decision {
        Decision::NONE
    }
}

impl<F> ControlHook for F
where
    F: FnMut(&PeriodSnapshot) -> Decision,
{
    fn on_period(&mut self, snapshot: &PeriodSnapshot) -> Decision {
        self(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{millis, secs};

    fn snap() -> PeriodSnapshot {
        PeriodSnapshot {
            k: 3,
            now: SimTime::ZERO + secs(4),
            period: secs(1),
            offered: 200,
            admitted: 150,
            dropped_entry: 50,
            dropped_network: 10,
            completed: 120,
            outstanding: 80,
            queued_tuples: 90,
            queued_load_us: 450_000.0,
            measured_cost_us: Some(5000.0),
            mean_delay_ms: Some(1900.0),
            cpu_busy_us: 600_000,
        }
    }

    #[test]
    fn rates_derive_from_counts() {
        let s = snap();
        assert!((s.fin_rate() - 200.0).abs() < 1e-9);
        assert!((s.fout_rate() - 120.0).abs() < 1e-9);
        assert!((s.drop_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn zero_offered_has_zero_drop_fraction() {
        let mut s = snap();
        s.offered = 0;
        s.dropped_entry = 0;
        s.dropped_network = 0;
        assert_eq!(s.drop_fraction(), 0.0);
    }

    #[test]
    fn decision_constructors() {
        assert_eq!(Decision::NONE.entry_drop_prob, 0.0);
        assert_eq!(Decision::entry(0.25).entry_drop_prob, 0.25);
        assert_eq!(Decision::network(1000.0).shed_load_us, 1000.0);
    }

    #[test]
    fn closures_are_hooks() {
        let mut calls = 0;
        {
            let mut hook = |_s: &PeriodSnapshot| {
                calls += 1;
                Decision::NONE
            };
            let _ = hook.on_period(&snap());
        }
        assert_eq!(calls, 1);
        let _ = millis(1); // silence unused import in some cfg combos
    }
}
