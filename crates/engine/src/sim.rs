//! The virtual-time simulator.
//!
//! Executes a [`QueryNetwork`] against a
//! schedule of tuple arrivals on a simulated CPU:
//!
//! * operators are scheduled **round-robin**, one queued tuple per visit,
//!   matching the Borealis scheduling policy the paper's model assumes
//!   (§4.2: FIFO queues, round-robin, no tuple priorities);
//! * executing an operator of cost `w` advances the clock by `w / H`
//!   where `H` is the headroom factor (the fraction of CPU available to
//!   query processing);
//! * at every control-period boundary the [`ControlHook`] is consulted and
//!   its [`Decision`] applied (entry drop probability and/or immediate
//!   in-network load shedding).
//!
//! Virtual time makes the paper's 400-second experiments run in
//! milliseconds and deterministically (seeded RNG).

use crate::cost::CostSchedule;
use crate::hook::{ControlHook, Decision, PeriodSnapshot};
use crate::metrics::{MetricsAccumulator, PeriodRecord, RunReport};
use crate::network::{NodeId, QueryNetwork};
use crate::rng::{engine_rng, EngineRng, EntryShedder};
use crate::telemetry::{EventSink, SharedRecorder, SpanKind};
use crate::operator::OutputBuffer;
use crate::time::{secs, SimDuration, SimTime};
use crate::tuple::{RootId, Tuple};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Victim-selection policy for in-network load shedding.
///
/// `NewestFirst` is the paper's statistical shedding (drop what has
/// waited least); `LowestValueFirst` is *semantic* shedding in the sense
/// of \[26\]: victims are chosen by (payload-value) utility, so the tuples
/// that survive are the most valuable ones. Policies apply to the
/// dominant queue — the network input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Drop the most recently admitted tuples first (default).
    #[default]
    NewestFirst,
    /// Drop the oldest tuples first (they are closest to violating).
    OldestFirst,
    /// Semantic shedding: drop the lowest-value tuples first.
    LowestValueFirst,
    /// LSRM-style location ranking (Aurora's roadmap, \[26\]): visit
    /// drop locations in descending load-saved-per-output-lost order,
    /// draining each before moving to the next-best one. Minimises
    /// expected query-output loss for the load shed.
    LsrmRatio,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Control period `T`.
    pub period: SimDuration,
    /// True headroom of the simulated CPU: the fraction of wall time
    /// available to query processing (the paper fits `H = 0.97`).
    pub headroom: f64,
    /// Delay target `yd`, used for violation accounting in the report.
    pub target_delay: SimDuration,
    /// RNG seed (tuple payloads, entry shedding coin flips, shed-location
    /// selection).
    pub seed: u64,
    /// Join/grouping keys are drawn uniformly from `0..key_space`.
    pub key_space: u64,
    /// Time-varying multiplier on every operator's base cost.
    pub cost_schedule: CostSchedule,
    /// Admission gate: maximum number of tuples inside operator queues at
    /// once. The backlog beyond this waits in a global FIFO input buffer
    /// (the network buffer of §3), which keeps operator trains small and
    /// departures arrival-ordered. Must be ≥ 1.
    pub admission_gate: usize,
    /// Victim-selection policy for in-network shedding.
    pub shed_policy: ShedPolicy,
    /// Wall-clock pacing: `None` (default) runs in pure virtual time;
    /// `Some(speed)` throttles the run so that `speed` simulated seconds
    /// elapse per wall-clock second — a real-time (or accelerated) replay
    /// of the full query network. `Some(1.0)` is true real time.
    pub pacing: Option<f64>,
    /// Ingress batching: how many due arrivals are admitted per admission
    /// pass. `1` (the default) is the historical per-arrival path and
    /// keeps every seeded RNG stream bit-identical to prior releases.
    /// Values ≥ 2 mirror the real-time engines' `offer_batch` front door:
    /// shed decisions are made in one grouped pass per entry (amortising
    /// the hybrid shedder's state access) and kept tuples are then
    /// admitted in arrival order, each with its **exact** original
    /// virtual timestamp. The reordered RNG draws make batched runs a
    /// *different* (still statistically-iid) sample path, which is why
    /// batching is opt-in.
    pub ingress_batch: usize,
}

impl SimConfig {
    /// Paper-default configuration: `T = 1 s`, `H = 0.97`, `yd = 2 s`.
    pub fn paper_default() -> Self {
        Self {
            period: secs(1),
            headroom: 0.97,
            target_delay: secs(2),
            seed: 0xB0EA11,
            key_space: 100,
            cost_schedule: CostSchedule::constant(),
            admission_gate: 64,
            shed_policy: ShedPolicy::default(),
            pacing: None,
            ingress_batch: 1,
        }
    }

    /// Enables wall-clock pacing (see [`Self::pacing`]).
    pub fn with_pacing(mut self, simulated_seconds_per_wall_second: f64) -> Self {
        assert!(
            simulated_seconds_per_wall_second > 0.0
                && simulated_seconds_per_wall_second.is_finite()
        );
        self.pacing = Some(simulated_seconds_per_wall_second);
        self
    }

    /// Sets the shed-victim policy.
    pub fn with_shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }

    /// Sets the control period.
    pub fn with_period(mut self, period: SimDuration) -> Self {
        self.period = period;
        self
    }

    /// Sets the delay target.
    pub fn with_target_delay(mut self, target: SimDuration) -> Self {
        self.target_delay = target;
        self
    }

    /// Sets the headroom factor.
    pub fn with_headroom(mut self, h: f64) -> Self {
        assert!(h > 0.0 && h <= 1.0, "headroom must be in (0, 1]");
        self.headroom = h;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cost schedule.
    pub fn with_cost_schedule(mut self, schedule: CostSchedule) -> Self {
        self.cost_schedule = schedule;
        self
    }

    /// Sets the ingress batch size (see [`Self::ingress_batch`]).
    pub fn with_ingress_batch(mut self, n: usize) -> Self {
        assert!(n >= 1, "ingress_batch must be >= 1");
        self.ingress_batch = n;
        self
    }
}

/// Per-root bookkeeping: arrival time and the number of in-flight tuple
/// copies derived from it.
///
/// Slots are recycled through a free-list: a root that fully departs
/// returns its slot for the next admission, so slab memory is bounded by
/// the peak number of *live* roots instead of growing with every
/// admission over the run. A recycled [`RootId`] is safe because no live
/// tuple can still reference a fully-departed root.
struct RootSlab {
    arrival: Vec<SimTime>,
    outstanding: Vec<u32>,
    free: Vec<u32>,
    live_roots: u64,
}

impl RootSlab {
    fn new() -> Self {
        Self {
            arrival: Vec::new(),
            outstanding: Vec::new(),
            free: Vec::new(),
            live_roots: 0,
        }
    }

    /// Preallocates capacity for `n` live roots (arrival/outstanding grow
    /// together, so one reserve covers both).
    fn reserve(&mut self, n: usize) {
        self.arrival.reserve(n);
        self.outstanding.reserve(n);
    }

    fn admit(&mut self, arrival: SimTime) -> RootId {
        self.live_roots += 1;
        match self.free.pop() {
            Some(idx) => {
                self.arrival[idx as usize] = arrival;
                self.outstanding[idx as usize] = 1;
                RootId(idx as u64)
            }
            None => {
                let id = RootId(self.arrival.len() as u64);
                self.arrival.push(arrival);
                self.outstanding.push(1);
                id
            }
        }
    }

    /// Adds `delta` in-flight copies for a root.
    fn fork(&mut self, root: RootId, delta: u32) {
        self.outstanding[root.0 as usize] += delta;
    }

    /// Removes one in-flight copy; returns `Some(arrival)` if that was the
    /// last copy (the root departs and its slot is recycled).
    fn consume(&mut self, root: RootId) -> Option<SimTime> {
        let idx = root.0 as usize;
        debug_assert!(self.outstanding[idx] > 0, "double consume of root");
        self.outstanding[idx] -= 1;
        if self.outstanding[idx] == 0 {
            self.live_roots -= 1;
            self.free.push(idx as u32);
            Some(self.arrival[idx])
        } else {
            None
        }
    }
}

/// Precomputed routing table of one node: every outgoing edge flattened
/// into `(node, port)` pairs, with per-branch half-open ranges into the
/// flat list. Replaces walking the nested `Vec<Vec<EdgeTarget>>` on every
/// emitted tuple.
struct Fanout {
    targets: Vec<(u32, u32)>,
    branches: Vec<(u32, u32)>,
}

impl Fanout {
    fn build(network: &QueryNetwork) -> Vec<Fanout> {
        network
            .nodes()
            .iter()
            .map(|node| {
                let mut targets = Vec::new();
                let mut branches = Vec::with_capacity(node.outputs.len());
                for branch in &node.outputs {
                    let start = targets.len() as u32;
                    for edge in branch {
                        targets.push((edge.node.index() as u32, edge.port as u32));
                    }
                    branches.push((start, targets.len() as u32));
                }
                Fanout { targets, branches }
            })
            .collect()
    }
}

/// The virtual-time stream-engine simulator.
pub struct Simulator {
    network: QueryNetwork,
    cfg: SimConfig,
    queues: Vec<Vec<VecDeque<Tuple>>>,
    /// Tuples inside operator queues.
    total_queued: u64,
    /// The global FIFO network-input buffer: admitted tuples waiting for a
    /// slot inside the operator network, tagged with their entry node.
    input_buffer: VecDeque<(usize, Tuple)>,
    /// Per-node count of input-buffer tuples destined for that entry, kept
    /// in lockstep with `input_buffer` so the period-boundary load
    /// estimate is O(entries) instead of O(buffered tuples).
    buffered_per_entry: Vec<u64>,
    /// Entry-shedder state, one per entry position (hybrid Bernoulli /
    /// geometric-skip, picked from the commanded α); reset whenever the
    /// controller issues a new decision.
    entry_skip: Vec<Option<EntryShedder>>,
    /// Reusable drop-flag buffer for the batched admission pass
    /// (`ingress_batch` ≥ 2), so the hot loop never allocates.
    ingress_scratch: Vec<bool>,
    /// Flattened routing tables, one per node.
    fanout: Vec<Fanout>,
    roots: RootSlab,
    rng: EngineRng,
    rr: usize,
    port_toggle: Vec<usize>,
    out_buf: OutputBuffer,
    clock: SimTime,
    /// Train scheduling state: the node currently being drained and how
    /// many tuples remain in its train.
    train_node: Option<usize>,
    train_left: u64,
    /// Tuples queued per node (all ports), kept in lockstep with `queues`
    /// so scheduling decisions never walk the port deques.
    node_queued: Vec<u64>,
    /// Bit i set ⇔ node i has queued tuples, for networks of ≤ 64 nodes:
    /// turns round-robin node selection into a rotate + trailing_zeros.
    /// Larger networks fall back to scanning `node_queued`.
    nonempty_mask: u64,
    /// Precomputed `1 / headroom` (service-time inflation per invocation).
    inv_headroom: f64,
    /// Per-node passthrough flag (identity map / union), precomputed so
    /// the scheduler can route such tuples without an indirect call.
    passthrough: Vec<bool>,
    /// Per-node `(work, wall, work-µs)` under the cost multiplier of the
    /// current schedule segment. Refreshed only when the clock crosses
    /// `cost_cache_until`, so the hot path does no per-invocation float
    /// scaling or breakpoint search.
    cost_cache: Vec<(SimDuration, SimDuration, f64)>,
    /// Exclusive end of the schedule segment `cost_cache` was built for.
    cost_cache_until: SimTime,
    node_processed: Vec<u64>,
    node_emitted: Vec<u64>,
    node_shed: Vec<u64>,
    /// Per-operator EWMA of the per-invocation CPU cost (µs); NaN until
    /// the operator first runs.
    node_cost_ewma: Vec<f64>,
    /// Optional telemetry sink for engine-side spans (shedder hot path).
    telemetry: Option<SharedRecorder>,
    /// Latency-truth-plane sink: every `u32`-th admitted root is tracked
    /// end to end and closed at departure ([`Self::with_spans`]).
    spans: Option<(crate::spans::SpanHandle, u32)>,
    /// Admission counter driving every-Nth sojourn sampling.
    spans_acc: u64,
    /// Per-root accumulated execute wall (µs; `u64::MAX` = unsampled),
    /// indexed in lockstep with the root slab. Admission always rewrites
    /// the slot, so recycled `RootId`s can never inherit a stale sample.
    spans_exec: Vec<u64>,
    /// Wall-clock anchor for paced runs (set on first loop iteration).
    pacing_started: Option<std::time::Instant>,
}

/// EWMA smoothing factor for per-operator cost tracking (the same order
/// as the controller's own cost estimator).
const COST_EWMA_ALPHA: f64 = 0.2;

/// Upper bound on operator invocations per [`Simulator::execute_batch`]
/// call. Batches normally end at the next event (arrival, period
/// boundary, run end); the cap only bounds pathological cases — e.g.
/// zero-cost operators whose execution never advances the clock — and
/// keeps wall-clock pacing granularity sane.
const MAX_BATCH: u32 = 1024;

/// Counters accumulated over one control period and reset at each
/// boundary.
#[derive(Default)]
struct PeriodCounters {
    offered: u64,
    admitted: u64,
    dropped_entry: u64,
    dropped_network: u64,
    completed: u64,
    delay_sum_ms: f64,
    cpu_work_us: u64,
    busy_wall_us: u64,
}

impl Simulator {
    /// Creates a simulator over a query network.
    pub fn new(network: QueryNetwork, cfg: SimConfig) -> Self {
        let queues = network
            .nodes()
            .iter()
            // Preallocated to the admission-gate scale so steady-state
            // runs never grow a queue mid-flight.
            .map(|n| {
                (0..n.logic.ports())
                    .map(|_| VecDeque::with_capacity(64))
                    .collect()
            })
            .collect();
        let n_nodes = network.len();
        let n_entries = network.entries().len();
        let port_toggle = vec![0; n_nodes];
        let rng = engine_rng(cfg.seed);
        let fanout = Fanout::build(&network);
        let inv_headroom = 1.0 / cfg.headroom;
        let passthrough = network
            .nodes()
            .iter()
            .map(|n| n.logic.is_passthrough())
            .collect();
        Self {
            network,
            cfg,
            queues,
            total_queued: 0,
            input_buffer: VecDeque::new(),
            buffered_per_entry: vec![0; n_nodes],
            entry_skip: vec![None; n_entries],
            ingress_scratch: Vec::new(),
            fanout,
            roots: RootSlab::new(),
            rng,
            rr: 0,
            port_toggle,
            out_buf: OutputBuffer::new(),
            clock: SimTime::ZERO,
            train_node: None,
            train_left: 0,
            node_queued: vec![0; n_nodes],
            nonempty_mask: 0,
            inv_headroom,
            passthrough,
            cost_cache: vec![(SimDuration::ZERO, SimDuration::ZERO, 0.0); n_nodes],
            cost_cache_until: SimTime::ZERO,
            node_processed: vec![0; n_nodes],
            node_emitted: vec![0; n_nodes],
            node_shed: vec![0; n_nodes],
            node_cost_ewma: vec![f64::NAN; n_nodes],
            telemetry: None,
            spans: None,
            spans_acc: 0,
            spans_exec: Vec::new(),
            pacing_started: None,
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &QueryNetwork {
        &self.network
    }

    /// Attaches a telemetry recorder: the engine reports its shedder
    /// hot-path spans ([`SpanKind::Shedder`]) into it. Share the same
    /// recorder with a [`TracingHook`](crate::telemetry::TracingHook) to
    /// get hook spans and per-period traces in one place.
    pub fn with_telemetry(mut self, recorder: SharedRecorder) -> Self {
        self.telemetry = Some(recorder);
        self
    }

    /// Attaches a latency-truth-plane span sink ([`crate::spans`]): every
    /// `sample_every`-th admitted root is tracked end to end and closed at
    /// departure with the exact virtual-time decomposition
    /// `sojourn = ring_wait + execute`, where `execute` is the summed wall
    /// time of the root's operator invocations (excluding the departing
    /// invocation, whose wall lands after the departure instant) and
    /// `ring_wait` is everything else the root spent queued. Sampled roots
    /// shed mid-network lose their sample, mirroring the real-time
    /// engines.
    pub fn with_spans(mut self, handle: crate::spans::SpanHandle, sample_every: u32) -> Self {
        self.spans = Some((handle, sample_every.max(1)));
        self
    }

    /// Marks the freshly admitted `root` as span-sampled (or not),
    /// unconditionally rewriting its slot so slab recycling never leaks a
    /// stale sample.
    #[inline]
    fn note_admitted_root(&mut self, root: RootId) {
        let Some((_, every)) = self.spans.as_ref() else {
            return;
        };
        let every = *every as u64;
        self.spans_acc += 1;
        let idx = root.0 as usize;
        if self.spans_exec.len() <= idx {
            self.spans_exec.resize(idx + 1, u64::MAX);
        }
        self.spans_exec[idx] = if self.spans_acc.is_multiple_of(every) {
            0
        } else {
            u64::MAX
        };
    }

    /// Runs the simulation for `duration`, admitting tuples at the given
    /// (sorted, within-duration) arrival instants and consulting `hook` at
    /// every period boundary.
    ///
    /// Consumes the simulator: operator state (join windows, aggregate
    /// accumulators) is not reusable across runs.
    pub fn run(
        mut self,
        arrival_times: &[SimTime],
        hook: &mut dyn ControlHook,
        duration: SimDuration,
    ) -> RunReport {
        debug_assert!(
            arrival_times.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be sorted"
        );
        let end = SimTime::ZERO + duration;
        let period = self.cfg.period;
        assert!(period.as_micros() > 0, "period must be positive");

        // Overloaded runs park most arrivals in the input buffer (each
        // holding a live root); reserve up front (capped) so admission
        // never pays a mid-run regrow.
        self.input_buffer.reserve(arrival_times.len().min(1 << 16));
        self.roots.reserve(arrival_times.len().min(1 << 16));

        let mut metrics = MetricsAccumulator::new(self.cfg.target_delay, period);
        let mut decision = Decision::NONE;
        let mut next_arrival = 0usize;
        let mut next_boundary = SimTime::ZERO + period;
        let mut k: u64 = 0;
        let mut pc = PeriodCounters::default();

        loop {
            // 1. Admit arrivals that are due.
            self.admit_due(arrival_times, &mut next_arrival, end, &decision, &mut metrics, &mut pc);
            self.fill_from_input_buffer();

            // 2. Period boundaries that are due.
            while next_boundary <= self.clock && next_boundary <= end {
                let queued_load_us = self.queued_load_us();
                let snapshot = PeriodSnapshot {
                    k,
                    now: next_boundary,
                    period,
                    offered: pc.offered,
                    admitted: pc.admitted,
                    dropped_entry: pc.dropped_entry,
                    dropped_network: pc.dropped_network,
                    completed: pc.completed,
                    outstanding: self.roots.live_roots,
                    queued_tuples: self.total_queued + self.input_buffer.len() as u64,
                    queued_load_us,
                    measured_cost_us: if pc.completed > 0 {
                        Some(pc.cpu_work_us as f64 / pc.completed as f64)
                    } else {
                        None
                    },
                    // An idle pipeline (nothing completed *and* nothing
                    // in flight) has a known delay of zero — reporting
                    // `None` there would let an over-shedding controller
                    // read its own drought as a sensor blackout and hold
                    // the shut command forever.
                    mean_delay_ms: if pc.completed > 0 {
                        Some(pc.delay_sum_ms / pc.completed as f64)
                    } else if self.roots.live_roots == 0 {
                        Some(0.0)
                    } else {
                        None
                    },
                    cpu_busy_us: pc.cpu_work_us,
                };
                let new_decision = hook.on_period(&snapshot);
                let alpha_in_force = decision.drop_prob_for_entry(0);
                decision = new_decision;
                // Skip-sampling state is only valid under the α it was
                // drawn for; resample lazily under the new decision.
                self.entry_skip.iter_mut().for_each(|s| *s = None);
                metrics.periods.push(PeriodRecord {
                    k,
                    time_s: next_boundary.as_secs_f64(),
                    offered: pc.offered,
                    admitted: pc.admitted,
                    dropped: pc.dropped_entry + pc.dropped_network,
                    completed: pc.completed,
                    outstanding: self.roots.live_roots,
                    alpha: alpha_in_force,
                    arrival_mean_delay_ms: f64::NAN, // filled in finish()
                    measured_cost_us: if pc.completed > 0 {
                        pc.cpu_work_us as f64 / pc.completed as f64
                    } else {
                        f64::NAN
                    },
                    cpu_utilisation: pc.busy_wall_us as f64 / period.as_micros() as f64,
                });
                pc = PeriodCounters::default();
                k += 1;
                let boundary = next_boundary;
                next_boundary += period;

                // A decision commands the *following* period; at the run
                // end there is none, so acting on it would only shed
                // tuples already recorded as outstanding (breaking the
                // run-level conservation identity).
                if decision.shed_load_us > 0.0 && boundary < end {
                    let t0 = std::time::Instant::now();
                    let dropped = self.shed_load(decision.shed_load_us);
                    if let Some(rec) = self.telemetry.as_mut() {
                        rec.record_span(SpanKind::Shedder, t0.elapsed().as_nanos() as u64);
                    }
                    pc.dropped_network += dropped;
                    metrics.dropped_network += dropped;
                }
            }

            if self.clock >= end {
                break;
            }

            // 3. Execute a batch or idle. Between here and the next
            // boundary (or run end) only arrivals can interleave with the
            // scheduler, and the batch admits those itself — so whole
            // stretches of operator invocations run without bouncing
            // through the outer event loop per tuple.
            if self.total_queued > 0 {
                self.execute_batch(
                    next_boundary.min(end),
                    arrival_times,
                    &mut next_arrival,
                    end,
                    &decision,
                    &mut metrics,
                    &mut pc,
                );
            } else {
                // Idle: jump to the next event.
                let mut next_event = next_boundary.min(end);
                if next_arrival < arrival_times.len() {
                    next_event = next_event.min(arrival_times[next_arrival]);
                }
                debug_assert!(next_event >= self.clock);
                self.clock = next_event.max(self.clock);
            }

            // 4. Optional wall-clock pacing.
            if let Some(speed) = self.cfg.pacing {
                let wall_target =
                    std::time::Duration::from_secs_f64(self.clock.as_secs_f64() / speed);
                let started = *self
                    .pacing_started
                    .get_or_insert_with(std::time::Instant::now);
                let elapsed = started.elapsed();
                // Only sleep once the deficit is tangible — sub-ms sleeps
                // are noise and would dominate the loop.
                if wall_target > elapsed + std::time::Duration::from_millis(1) {
                    std::thread::sleep(wall_target - elapsed);
                }
            }
        }

        let node_stats = self
            .network
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, node)| crate::metrics::NodeStat {
                name: node.name.clone(),
                processed: self.node_processed[i],
                emitted: self.node_emitted[i],
                shed: self.node_shed[i],
                cost_ewma_us: self.node_cost_ewma[i],
            })
            .collect();
        metrics.finish_with_nodes(node_stats)
    }

    /// Moves tuples from the input buffer into their entry-operator
    /// queues while the in-network population is below the admission
    /// gate.
    #[inline]
    fn fill_from_input_buffer(&mut self) {
        let gate = self.cfg.admission_gate.max(1) as u64;
        while self.total_queued < gate {
            match self.input_buffer.pop_front() {
                Some((entry, tuple)) => {
                    self.buffered_per_entry[entry] -= 1;
                    self.queues[entry][0].push_back(tuple);
                    self.total_queued += 1;
                    self.note_push(entry);
                }
                None => break,
            }
        }
    }

    /// Rebuilds the per-node cost cache for the schedule segment the
    /// clock currently sits in. `segment` is bit-exact with `multiplier`,
    /// so cached invocations behave identically to per-invocation lookup.
    #[cold]
    fn refresh_cost_cache(&mut self) {
        let (mult, until) = self.cfg.cost_schedule.segment(self.clock);
        self.cost_cache_until = until;
        for (cache, node) in self.cost_cache.iter_mut().zip(self.network.nodes()) {
            let work = node.cost.mul_f64(mult);
            let wall = work.mul_f64(self.inv_headroom);
            *cache = (work, wall, work.as_micros() as f64);
        }
    }

    /// Records a tuple entering `node`'s queues in the per-node counter
    /// and the nonempty bitmask.
    #[inline]
    fn note_push(&mut self, node: usize) {
        self.node_queued[node] += 1;
        if node < 64 {
            self.nonempty_mask |= 1u64 << node;
        }
    }

    /// Records a tuple leaving `node`'s queues.
    #[inline]
    fn note_pop(&mut self, node: usize) {
        self.node_queued[node] -= 1;
        if self.node_queued[node] == 0 && node < 64 {
            self.nonempty_mask &= !(1u64 << node);
        }
    }

    /// First node with queued tuples in round-robin order starting at
    /// `self.rr`. For networks of ≤ 64 nodes this is a single rotate +
    /// trailing_zeros on the nonempty bitmask; larger networks scan the
    /// per-node counters.
    #[inline]
    fn next_nonempty_node(&self, n: usize) -> Option<usize> {
        if n <= 64 {
            let mask = self.nonempty_mask;
            if mask == 0 {
                return None;
            }
            // rotate_right(rr) maps node j to bit (j - rr) mod 64, so the
            // lowest set bit is the first nonempty node in cyclic order
            // rr, rr+1, …, n-1, 0, …, rr-1 (bits n..64 are never set).
            let off = mask.rotate_right(self.rr as u32).trailing_zeros() as usize;
            Some((self.rr + off) & 63)
        } else {
            (0..n)
                .map(|off| (self.rr + off) % n)
                .find(|&i| self.node_queued[i] > 0)
        }
    }

    /// Expected remaining CPU load of everything queued (operator queues
    /// plus the input buffer), in µs.
    ///
    /// The input-buffer contribution comes from the per-entry counters
    /// maintained alongside the buffer, so the boundary-time estimate is
    /// O(nodes) regardless of how deep the backlog is.
    fn queued_load_us(&self) -> f64 {
        debug_assert_eq!(
            self.buffered_per_entry.iter().sum::<u64>() as usize,
            self.input_buffer.len(),
            "buffered-per-entry counters out of sync with the input buffer"
        );
        let in_network: f64 = self
            .queues
            .iter()
            .enumerate()
            .map(|(i, ports)| {
                let per_tuple = self.network.downstream_load_us(NodeId(i));
                ports.iter().map(|q| q.len() as f64).sum::<f64>() * per_tuple
            })
            .sum();
        let buffered: f64 = self
            .network
            .entries()
            .iter()
            .map(|&e| {
                self.buffered_per_entry[e.index()] as f64
                    * self.network.downstream_load_us(e)
            })
            .sum();
        in_network + buffered
    }

    /// Admits every arrival at or before the current clock (and before
    /// `end`), applying the entry-shedding decision in force.
    fn admit_due(
        &mut self,
        arrival_times: &[SimTime],
        next_arrival: &mut usize,
        end: SimTime,
        decision: &Decision,
        metrics: &mut MetricsAccumulator,
        pc: &mut PeriodCounters,
    ) {
        if self.cfg.ingress_batch > 1 {
            return self.admit_due_batched(arrival_times, next_arrival, end, decision, metrics, pc);
        }
        let n_entries = self.network.entries().len();
        let key_space = self.cfg.key_space.max(1);
        // Rotating cursor equivalent to `(offered - 1) % n_entries`
        // without a division per arrival.
        let mut cursor = metrics.offered as usize % n_entries;
        while *next_arrival < arrival_times.len()
            && arrival_times[*next_arrival] <= self.clock
            && arrival_times[*next_arrival] < end
        {
            let t = arrival_times[*next_arrival];
            *next_arrival += 1;
            pc.offered += 1;
            metrics.offered += 1;
            // Entry (stream) assignment is by arrival order, so it is
            // stable under shedding — a prerequisite for per-entry
            // (priority) drop probabilities.
            let entry_pos = cursor;
            cursor += 1;
            if cursor == n_entries {
                cursor = 0;
            }
            let alpha = decision.drop_prob_for_entry(entry_pos);
            // Hybrid entry shedding: geometric skip sampling (one RNG
            // draw per *drop*) below `rng::BERNOULLI_ALPHA_MIN`, a plain
            // coin flip per arrival above it — each branch is the faster
            // sampler in its α regime and both are statistically iid
            // Bernoulli(α) (see `rng::EntryShedder`). The state is reset
            // at every new decision, which is harmless because the
            // geometric distribution is memoryless.
            if alpha > 0.0 {
                let skip = self.entry_skip[entry_pos]
                    .get_or_insert_with(|| EntryShedder::new(alpha, &mut self.rng));
                if skip.should_drop(&mut self.rng) {
                    pc.dropped_entry += 1;
                    metrics.dropped_entry += 1;
                    continue;
                }
            }
            pc.admitted += 1;
            let root = self.roots.admit(t);
            self.note_admitted_root(root);
            // Bounded key via widening multiply (Lemire) — uniform to
            // within 2⁻⁶⁴·key_space, with no 128-bit division per tuple.
            let key =
                (((self.rng.next_u64() as u128) * (key_space as u128)) >> 64) as u64;
            let value = self.rng.gen::<f64>();
            let entry = self.network.entries()[entry_pos];
            self.buffered_per_entry[entry.index()] += 1;
            self.input_buffer
                .push_back((entry.index(), Tuple::new(root, t, key, value)));
        }
    }

    /// Batched variant of [`Self::admit_due`], active when
    /// [`SimConfig::ingress_batch`] ≥ 2 — the virtual-time mirror of the
    /// real-time engines' `offer_batch` front door.
    ///
    /// Each pass gathers up to `ingress_batch` due arrivals and makes the
    /// entry-shed decisions in one grouped sweep per entry (loading each
    /// entry's hybrid-shedder state once per batch instead of once per
    /// arrival), then admits the survivors in original arrival order so
    /// the global input buffer stays arrival-sorted. Every admitted tuple
    /// keeps its own exact virtual arrival timestamp; only the RNG draw
    /// *order* differs from the scalar path.
    fn admit_due_batched(
        &mut self,
        arrival_times: &[SimTime],
        next_arrival: &mut usize,
        end: SimTime,
        decision: &Decision,
        metrics: &mut MetricsAccumulator,
        pc: &mut PeriodCounters,
    ) {
        let n_entries = self.network.entries().len();
        let key_space = self.cfg.key_space.max(1);
        let batch_max = self.cfg.ingress_batch;
        loop {
            // Gather the next batch of due arrivals.
            let start = *next_arrival;
            let mut n = 0usize;
            while n < batch_max {
                let i = start + n;
                if i >= arrival_times.len()
                    || arrival_times[i] > self.clock
                    || arrival_times[i] >= end
                {
                    break;
                }
                n += 1;
            }
            if n == 0 {
                return;
            }
            *next_arrival = start + n;
            // Entry assignment stays by arrival order (stable under
            // shedding), so arrival j of this batch belongs to entry
            // `(cursor0 + j) % n_entries`.
            let cursor0 = metrics.offered as usize % n_entries;
            pc.offered += n as u64;
            metrics.offered += n as u64;
            // Pass 1 — grouped shed decisions, one entry at a time.
            let mut scratch = std::mem::take(&mut self.ingress_scratch);
            scratch.clear();
            scratch.resize(n, false);
            for entry_pos in 0..n_entries {
                let first = (entry_pos + n_entries - cursor0) % n_entries;
                if first >= n {
                    continue;
                }
                let alpha = decision.drop_prob_for_entry(entry_pos);
                if alpha <= 0.0 {
                    continue;
                }
                let skip = self.entry_skip[entry_pos]
                    .get_or_insert_with(|| EntryShedder::new(alpha, &mut self.rng));
                let mut j = first;
                while j < n {
                    if skip.should_drop(&mut self.rng) {
                        scratch[j] = true;
                    }
                    j += n_entries;
                }
            }
            // Pass 2 — admit survivors in arrival order, each with its
            // exact original timestamp.
            let mut cursor = cursor0;
            for (j, &dropped) in scratch.iter().enumerate() {
                let entry_pos = cursor;
                cursor += 1;
                if cursor == n_entries {
                    cursor = 0;
                }
                if dropped {
                    pc.dropped_entry += 1;
                    metrics.dropped_entry += 1;
                    continue;
                }
                let t = arrival_times[start + j];
                pc.admitted += 1;
                let root = self.roots.admit(t);
                self.note_admitted_root(root);
                let key =
                    (((self.rng.next_u64() as u128) * (key_space as u128)) >> 64) as u64;
                let value = self.rng.gen::<f64>();
                let entry = self.network.entries()[entry_pos];
                self.buffered_per_entry[entry.index()] += 1;
                self.input_buffer
                    .push_back((entry.index(), Tuple::new(root, t, key, value)));
            }
            self.ingress_scratch = scratch;
        }
    }

    /// Executes operator invocations back-to-back until the clock reaches
    /// `limit_events` (the next boundary or the run end), the queues
    /// drain, or [`MAX_BATCH`] invocations ran. Pending arrivals are
    /// admitted in-line the moment the clock crosses them, so event
    /// ordering is identical to a one-invocation-per-outer-iteration
    /// loop without paying the outer loop per tuple.
    #[allow(clippy::too_many_arguments)]
    fn execute_batch(
        &mut self,
        limit_events: SimTime,
        arrival_times: &[SimTime],
        next_arrival: &mut usize,
        end: SimTime,
        decision: &Decision,
        metrics: &mut MetricsAccumulator,
        pc: &mut PeriodCounters,
    ) {
        let mut budget = MAX_BATCH;
        loop {
            let mut limit = limit_events;
            if *next_arrival < arrival_times.len() {
                limit = limit.min(arrival_times[*next_arrival]);
            }
            while budget > 0 {
                budget -= 1;
                let (work_us, wall) = self.execute_one(metrics, pc);
                pc.cpu_work_us += work_us;
                pc.busy_wall_us += wall.as_micros();
                self.clock += wall;
                self.fill_from_input_buffer();
                if self.clock >= limit || self.total_queued == 0 {
                    break;
                }
            }
            if budget == 0 || self.clock >= limit_events {
                return;
            }
            // The clock crossed the next pending arrival (or the queues
            // drained short of it): admit what is due and keep draining.
            self.admit_due(arrival_times, next_arrival, end, decision, metrics, pc);
            self.fill_from_input_buffer();
            if self.total_queued == 0 {
                return; // idle — the outer loop jumps the clock forward
            }
        }
    }

    /// Executes one operator invocation. Returns (CPU work µs, wall time).
    fn execute_one(
        &mut self,
        metrics: &mut MetricsAccumulator,
        pc: &mut PeriodCounters,
    ) -> (u64, SimDuration) {
        let n = self.network.len();
        // Round-robin *train* scheduling (Aurora-style): each visit
        // snapshots the operator's queued tuples and drains exactly that
        // train before moving on. One-tuple-per-visit would cap every
        // operator at the same rate and turn merge points (unions, joins)
        // into artificial bottlenecks the real engine does not have.
        let node_idx = match self.train_node {
            Some(i) if self.train_left > 0 && self.node_queued[i] > 0 => i,
            _ => {
                // Callers only invoke this while work is queued; if the
                // bookkeeping ever disagrees, degrade to a no-op step
                // rather than aborting the whole run.
                let Some(i) = self.next_nonempty_node(n) else {
                    self.train_node = None;
                    self.train_left = 0;
                    return (0, SimDuration::ZERO);
                };
                self.rr = (i + 1) % n;
                self.train_node = Some(i);
                self.train_left = self.node_queued[i];
                i
            }
        };
        self.train_left = self.train_left.saturating_sub(1);
        if self.train_left == 0 {
            self.train_node = None;
        }

        // Alternate ports on binary operators; fall back to any non-empty.
        // `port_toggle` is kept `< ports`, so the wrap-arounds below are
        // single conditional subtractions, not divisions.
        let ports = self.queues[node_idx].len();
        let port = if ports == 1 {
            0
        } else {
            let preferred = self.port_toggle[node_idx];
            let Some(port) = (0..ports)
                .map(|off| {
                    let p = preferred + off;
                    if p >= ports {
                        p - ports
                    } else {
                        p
                    }
                })
                .find(|&p| !self.queues[node_idx][p].is_empty())
            else {
                return (0, SimDuration::ZERO);
            };
            self.port_toggle[node_idx] = if port + 1 >= ports { 0 } else { port + 1 };
            port
        };

        let Some(tuple) = self.queues[node_idx][port].pop_front() else {
            return (0, SimDuration::ZERO);
        };
        self.total_queued -= 1;
        self.note_pop(node_idx);

        let mut pushed: u32 = 0;
        if self.passthrough[node_idx] {
            // Passthrough fast path (identity maps, unions): the single
            // output is the input tuple on the default branch, so skip the
            // indirect `process` call and the scratch buffer entirely.
            self.node_processed[node_idx] += 1;
            self.node_emitted[node_idx] += 1;
            let fan = &self.fanout[node_idx];
            for &(node, port) in &fan.targets[..] {
                self.queues[node as usize][port as usize].push_back(tuple);
                self.total_queued += 1;
                // note_push inlined: `fan` pins a shared borrow of
                // self.fanout, so only disjoint fields may be touched here.
                self.node_queued[node as usize] += 1;
                if (node as usize) < 64 {
                    self.nonempty_mask |= 1u64 << node;
                }
                pushed += 1;
            }
        } else {
            self.out_buf.clear();
            let now = self.clock;
            let node = &mut self.network.nodes_mut()[node_idx];
            node.logic.process(port, &tuple, now, &mut self.out_buf);
            self.node_processed[node_idx] += 1;
            self.node_emitted[node_idx] += self.out_buf.items.len() as u64;

            // Route the outputs through the precomputed flat fanout table.
            // Take the item list out of the scratch buffer so queue pushes
            // do not alias the buffer borrow; hand the allocation back
            // afterwards (workhorse-buffer reuse).
            let mut items = std::mem::take(&mut self.out_buf.items);
            let fan = &self.fanout[node_idx];
            for &(branch, out_tuple) in &items {
                let targets = match branch {
                    Some(b) => match fan.branches.get(b) {
                        Some(&(start, end)) => &fan.targets[start as usize..end as usize],
                        None => &[],
                    },
                    None => &fan.targets[..],
                };
                for &(node, port) in targets {
                    self.queues[node as usize][port as usize].push_back(out_tuple);
                    self.total_queued += 1;
                    // note_push inlined, as above.
                    self.node_queued[node as usize] += 1;
                    if (node as usize) < 64 {
                        self.nonempty_mask |= 1u64 << node;
                    }
                    pushed += 1;
                }
            }
            items.clear();
            self.out_buf.items = items;
        }

        if pushed > 0 {
            self.roots.fork(tuple.root, pushed);
        }
        let root_idx = tuple.root.0 as usize;
        let departed = if let Some(arrival) = self.roots.consume(tuple.root) {
            let departure = self.clock;
            metrics.record_departure(arrival, departure);
            pc.completed += 1;
            pc.delay_sum_ms += (departure - arrival).as_millis_f64();
            if let Some(exec_us) = self.spans_exec.get_mut(root_idx) {
                if *exec_us != u64::MAX {
                    // Close the sampled sojourn with the exact
                    // decomposition: everything not spent executing this
                    // root's tuples was spent waiting in queues.
                    let exec = *exec_us;
                    *exec_us = u64::MAX;
                    let sojourn_us = (departure - arrival).0;
                    if let Some((handle, _)) = self.spans.as_ref() {
                        handle.record(crate::spans::Stage::Execute, exec * 1_000);
                        handle.record(
                            crate::spans::Stage::RingWait,
                            sojourn_us.saturating_sub(exec) * 1_000,
                        );
                        handle.record_sojourn(sojourn_us * 1_000);
                    }
                }
            }
            true
        } else {
            false
        };

        if self.clock >= self.cost_cache_until {
            self.refresh_cost_cache();
        }
        let (work, wall, w_us) = self.cost_cache[node_idx];
        if !departed {
            // This invocation's wall advances the clock after the return,
            // so a still-live sampled root accrues it as execute time.
            if let Some(exec_us) = self.spans_exec.get_mut(root_idx) {
                if *exec_us != u64::MAX {
                    *exec_us += wall.0;
                }
            }
        }
        let ewma = &mut self.node_cost_ewma[node_idx];
        *ewma = if ewma.is_nan() {
            w_us
        } else {
            (1.0 - COST_EWMA_ALPHA) * *ewma + COST_EWMA_ALPHA * w_us
        };
        (work.as_micros(), wall)
    }

    /// Sheds approximately `target_us` of queued load from random
    /// locations (the paper's own evaluation shedder: "allows shedding
    /// from the queue and randomly selects shedding locations"). Returns
    /// the number of tuples dropped.
    fn shed_load(&mut self, target_us: f64) -> u64 {
        // Queue contents are about to change under the scheduler's feet.
        self.train_node = None;
        self.train_left = 0;
        if self.cfg.shed_policy == ShedPolicy::LsrmRatio {
            return self.shed_load_lsrm(target_us);
        }
        let mut shed = 0.0f64;
        let mut dropped = 0u64;
        // The input buffer is the dominant queue; pick victims there
        // according to the configured policy.
        match self.cfg.shed_policy {
            ShedPolicy::NewestFirst => {
                while shed < target_us {
                    match self.input_buffer.pop_back() {
                        Some((entry, t)) => {
                            self.buffered_per_entry[entry] -= 1;
                            shed += self.network.downstream_load_us(NodeId(entry));
                            self.node_shed[entry] += 1;
                            if self.roots.consume(t.root).is_some() {
                                dropped += 1;
                            }
                        }
                        None => break,
                    }
                }
            }
            ShedPolicy::OldestFirst => {
                while shed < target_us {
                    match self.input_buffer.pop_front() {
                        Some((entry, t)) => {
                            self.buffered_per_entry[entry] -= 1;
                            shed += self.network.downstream_load_us(NodeId(entry));
                            self.node_shed[entry] += 1;
                            if self.roots.consume(t.root).is_some() {
                                dropped += 1;
                            }
                        }
                        None => break,
                    }
                }
            }
            ShedPolicy::LowestValueFirst => {
                // Semantic shedding: sort victim candidates by payload
                // value, drop the least valuable, keep arrival order for
                // the survivors.
                if !self.input_buffer.is_empty() && target_us > 0.0 {
                    let mut order: Vec<usize> = (0..self.input_buffer.len()).collect();
                    order.sort_by(|&a, &b| {
                        self.input_buffer[a]
                            .1
                            .value
                            .partial_cmp(&self.input_buffer[b].1.value)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let mut doomed = vec![false; self.input_buffer.len()];
                    for &idx in &order {
                        if shed >= target_us {
                            break;
                        }
                        let (entry, t) = self.input_buffer[idx];
                        self.buffered_per_entry[entry] -= 1;
                        shed += self.network.downstream_load_us(NodeId(entry));
                        self.node_shed[entry] += 1;
                        if self.roots.consume(t.root).is_some() {
                            dropped += 1;
                        }
                        doomed[idx] = true;
                    }
                    let mut i = 0;
                    self.input_buffer.retain(|_| {
                        let keep = !doomed[i];
                        i += 1;
                        keep
                    });
                }
            }
            ShedPolicy::LsrmRatio => unreachable!("handled above"),
        }
        if shed >= target_us {
            return dropped;
        }
        // Random shed locations via *partial* Fisher–Yates: each visited
        // position is drawn lazily, so the RNG/shuffle cost is
        // proportional to the locations actually drained rather than the
        // full node count (the loop usually stops after one or two).
        let n = self.network.len();
        let mut order: Vec<usize> = (0..n).collect();
        'outer: for visit in 0..n {
            let j = self.rng.gen_range(visit..n);
            order.swap(visit, j);
            let i = order[visit];
            let per_tuple = self.network.downstream_load_us(NodeId(i));
            for port in 0..self.queues[i].len() {
                while shed < target_us {
                    // Drop the newest tuples first (they have waited least).
                    match self.queues[i][port].pop_back() {
                        Some(t) => {
                            self.total_queued -= 1;
                            self.note_pop(i);
                            shed += per_tuple;
                            self.node_shed[i] += 1;
                            // A shed root that reaches zero copies departs
                            // silently — it is loss, not a delay sample.
                            // On fan-out networks a root can have other
                            // copies still in flight; it counts as
                            // dropped only when this shed retires it
                            // (otherwise the surviving copy settles its
                            // fate), keeping the run-level conservation
                            // identity exact.
                            if self.roots.consume(t.root).is_some() {
                                dropped += 1;
                            }
                        }
                        None => break,
                    }
                }
                if shed >= target_us {
                    break 'outer;
                }
            }
        }
        dropped
    }

    /// LSRM-style shedding: locations visited in descending
    /// load-saved-per-output-lost ratio; entry locations also cover the
    /// input-buffer tuples destined for them.
    fn shed_load_lsrm(&mut self, target_us: f64) -> u64 {
        let n = self.network.len();
        let ratio = |i: usize| {
            let id = NodeId::from_index(i);
            self.network.downstream_load_us(id) / self.network.output_yield(id).max(1e-12)
        };
        let mut ranking: Vec<usize> = (0..n).collect();
        ranking.sort_by(|&a, &b| {
            ratio(b)
                .partial_cmp(&ratio(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut shed = 0.0f64;
        let mut dropped = 0u64;
        for &i in &ranking {
            if shed >= target_us {
                break;
            }
            let per_tuple = self.network.downstream_load_us(NodeId::from_index(i));
            if per_tuple <= 0.0 {
                continue;
            }
            // Node's own queues, newest first.
            for port in 0..self.queues[i].len() {
                while shed < target_us {
                    match self.queues[i][port].pop_back() {
                        Some(t) => {
                            self.total_queued -= 1;
                            self.note_pop(i);
                            shed += per_tuple;
                            self.node_shed[i] += 1;
                            // Count root retirements, not copies (see
                            // `shed_load` on fan-out conservation).
                            if self.roots.consume(t.root).is_some() {
                                dropped += 1;
                            }
                        }
                        None => break,
                    }
                }
            }
            // Entry node: its pending input-buffer tuples shed at the
            // same ratio.
            if shed < target_us
                && self.network.entries().iter().any(|e| e.index() == i)
            {
                let mut doomed = vec![false; self.input_buffer.len()];
                for idx in (0..self.input_buffer.len()).rev() {
                    if shed >= target_us {
                        break;
                    }
                    let (entry, t) = self.input_buffer[idx];
                    if entry != i {
                        continue;
                    }
                    doomed[idx] = true;
                    self.buffered_per_entry[entry] -= 1;
                    shed += per_tuple;
                    self.node_shed[i] += 1;
                    if self.roots.consume(t.root).is_some() {
                        dropped += 1;
                    }
                }
                let mut k = 0;
                self.input_buffer.retain(|_| {
                    let keep = !doomed[k];
                    k += 1;
                    keep
                });
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NoShedding;
    use crate::network::NetworkBuilder;
    use crate::operator::{Filter, Map};
    use crate::time::{micros, millis};

    /// A single-operator network with the given per-tuple cost.
    fn unit_network(cost: SimDuration) -> QueryNetwork {
        let mut b = NetworkBuilder::new();
        let m = b.add("m", cost, Map::identity());
        b.entry(m);
        b.build().unwrap()
    }

    /// Evenly spaced arrivals at `rate` tuples/s for `dur_s` seconds.
    fn uniform_arrivals(rate: f64, dur_s: f64) -> Vec<SimTime> {
        let n = (rate * dur_s).round() as u64;
        let gap = 1e6 / rate;
        (0..n)
            .map(|i| SimTime((i as f64 * gap).round() as u64))
            .collect()
    }

    #[test]
    fn underload_has_constant_small_delay() {
        // Capacity = H/c = 0.97/5ms = 194/s; offer 100/s.
        let net = unit_network(millis(5));
        let cfg = SimConfig::paper_default();
        let sim = Simulator::new(net, cfg);
        let arrivals = uniform_arrivals(100.0, 20.0);
        let report = sim.run(&arrivals, &mut NoShedding, secs(20));
        assert_eq!(report.offered, 2000);
        assert_eq!(report.completed, 2000);
        assert_eq!(report.loss_ratio(), 0.0);
        // Delay ≈ one service time c/H ≈ 5.15 ms.
        assert!(report.delay_stats().mean_ms() < 12.0, "{}", report.delay_stats().mean_ms());
    }

    #[test]
    fn overload_grows_delay_linearly() {
        // Offer 2× capacity: queue builds, delay ramps (Fig 5's fin=300).
        let net = unit_network(millis(5));
        let cfg = SimConfig::paper_default();
        let sim = Simulator::new(net, cfg);
        let arrivals = uniform_arrivals(400.0, 20.0);
        let report = sim.run(&arrivals, &mut NoShedding, secs(20));
        // y(k) by arrival period should increase monotonically (roughly).
        // Use an early-middle period: later arrivals have not departed by
        // the end of the run (the backlog exceeds the remaining horizon).
        let ys = report.y_series_ms();
        let early: f64 = ys[1];
        let late = ys[8];
        assert!(late > early * 3.0, "early {early}, late {late}");
        assert!(report.periods.last().unwrap().outstanding > 500);
    }

    #[test]
    fn knee_matches_h_over_c() {
        // At exactly capacity the queue stays near-empty; just above, it
        // builds. c = 5 ms, H = 0.97 → capacity 194/s.
        let below = {
            let sim = Simulator::new(unit_network(millis(5)), SimConfig::paper_default());
            sim.run(&uniform_arrivals(185.0, 20.0), &mut NoShedding, secs(20))
        };
        let above = {
            let sim = Simulator::new(unit_network(millis(5)), SimConfig::paper_default());
            sim.run(&uniform_arrivals(210.0, 20.0), &mut NoShedding, secs(20))
        };
        assert!(below.periods.last().unwrap().outstanding < 20);
        assert!(above.periods.last().unwrap().outstanding > 100);
    }

    #[test]
    fn entry_shedding_probability_drops_share() {
        let net = unit_network(micros(100));
        let cfg = SimConfig::paper_default();
        let sim = Simulator::new(net, cfg);
        let arrivals = uniform_arrivals(1000.0, 10.0);
        let mut hook = |_s: &PeriodSnapshot| Decision::entry(0.5);
        let report = sim.run(&arrivals, &mut hook, secs(10));
        let ratio = report.loss_ratio();
        // First period runs unshed (alpha starts at 0): expect ≈ 0.45.
        assert!(ratio > 0.35 && ratio < 0.55, "ratio {ratio}");
    }

    #[test]
    fn batched_ingress_identical_when_nothing_is_shed() {
        // With the shedder off, the batched pass admits the same tuples
        // with the same timestamps in the same order as the scalar path,
        // so the whole report is equivalent.
        let scalar = {
            let sim = Simulator::new(unit_network(millis(5)), SimConfig::paper_default());
            sim.run(&uniform_arrivals(100.0, 10.0), &mut NoShedding, secs(10))
        };
        let batched = {
            let cfg = SimConfig::paper_default().with_ingress_batch(256);
            let sim = Simulator::new(unit_network(millis(5)), cfg);
            sim.run(&uniform_arrivals(100.0, 10.0), &mut NoShedding, secs(10))
        };
        assert_eq!(scalar.offered, batched.offered);
        assert_eq!(scalar.completed, batched.completed);
        assert_eq!(
            scalar.delay_stats().mean_ms(),
            batched.delay_stats().mean_ms(),
            "exact per-arrival timestamps survive batching"
        );
    }

    #[test]
    fn batched_ingress_sheds_at_the_same_rate_as_scalar() {
        // α = 0.5 under heavy offered load: the batched grouped shed pass
        // is a different sample path but the same Bernoulli(α) process.
        let run = |batch: usize| {
            let cfg = SimConfig::paper_default().with_ingress_batch(batch);
            let sim = Simulator::new(unit_network(micros(100)), cfg);
            let mut hook = |_s: &PeriodSnapshot| Decision::entry(0.5);
            sim.run(&uniform_arrivals(1000.0, 10.0), &mut hook, secs(10))
        };
        let scalar = run(1);
        let batched = run(512);
        assert_eq!(scalar.offered, batched.offered);
        let (a, b) = (scalar.loss_ratio(), batched.loss_ratio());
        assert!((a - b).abs() < 0.05, "scalar {a} vs batched {b}");
        assert!(b > 0.35 && b < 0.55, "batched ratio {b}");
    }

    #[test]
    fn batched_ingress_covers_multiple_entries() {
        // Two entry streams: the grouped pass walks each entry's stripe
        // of the batch with that entry's own shedder state.
        let net = |cost| {
            let mut b = NetworkBuilder::new();
            let m1 = b.add("m1", cost, Map::identity());
            let m2 = b.add("m2", cost, Map::identity());
            b.entry(m1);
            b.entry(m2);
            b.build().unwrap()
        };
        let cfg = SimConfig::paper_default().with_ingress_batch(64);
        let sim = Simulator::new(net(micros(100)), cfg);
        let mut hook = |_s: &PeriodSnapshot| Decision::entry(0.3);
        let report = sim.run(&uniform_arrivals(2000.0, 10.0), &mut hook, secs(10));
        assert_eq!(report.offered, 20_000);
        let ratio = report.dropped_entry as f64 / report.offered as f64;
        // First period runs unshed; expect a bit under 0.3.
        assert!(ratio > 0.2 && ratio < 0.35, "ratio {ratio}");
    }

    #[test]
    fn filter_departures_count_as_completed() {
        let mut b = NetworkBuilder::new();
        let f = b.add("f", millis(1), Filter::value_below(0.5));
        b.entry(f);
        let net = b.build().unwrap();
        let sim = Simulator::new(net, SimConfig::paper_default());
        let arrivals = uniform_arrivals(100.0, 5.0);
        let report = sim.run(&arrivals, &mut NoShedding, secs(5));
        // Every tuple departs: either filtered out (short path) or passed
        // to the sink (same single op).
        assert_eq!(report.completed, report.offered);
    }

    #[test]
    fn network_shedding_reduces_queue() {
        let net = unit_network(millis(5));
        let cfg = SimConfig::paper_default();
        let sim = Simulator::new(net, cfg);
        let arrivals = uniform_arrivals(400.0, 10.0);
        // From period 2 on, shed 1 second worth of queued work per period.
        let mut hook = |s: &PeriodSnapshot| {
            if s.k >= 2 {
                Decision::network(1_000_000.0)
            } else {
                Decision::NONE
            }
        };
        let with_shed = sim.run(&arrivals, &mut hook, secs(10));
        let sim2 = Simulator::new(unit_network(millis(5)), SimConfig::paper_default());
        let without = sim2.run(&arrivals, &mut NoShedding, secs(10));
        assert!(with_shed.dropped_network > 0);
        assert!(
            with_shed.periods.last().unwrap().outstanding
                < without.periods.last().unwrap().outstanding
        );
    }

    #[test]
    fn conservation_of_tuples() {
        // offered = admitted + dropped_entry; roots all accounted.
        let net = unit_network(millis(2));
        let sim = Simulator::new(net, SimConfig::paper_default());
        let arrivals = uniform_arrivals(300.0, 10.0);
        let mut hook = |_s: &PeriodSnapshot| Decision::entry(0.3);
        let report = sim.run(&arrivals, &mut hook, secs(10));
        let outstanding_at_end = report.periods.last().unwrap().outstanding;
        assert_eq!(
            report.offered,
            report.dropped_entry + report.completed + outstanding_at_end
                + report.dropped_network
        );
    }

    #[test]
    fn snapshot_rates_reflect_arrivals() {
        let net = unit_network(micros(10));
        let sim = Simulator::new(net, SimConfig::paper_default());
        let arrivals = uniform_arrivals(250.0, 5.0);
        let mut seen = Vec::new();
        let mut hook = |s: &PeriodSnapshot| {
            seen.push(s.fin_rate());
            Decision::NONE
        };
        let _ = sim.run(&arrivals, &mut hook, secs(5));
        assert_eq!(seen.len(), 5);
        for rate in &seen {
            assert!((rate - 250.0).abs() < 2.0, "rate {rate}");
        }
    }

    #[test]
    fn cost_schedule_scales_delay() {
        // Doubling the cost halves capacity: same workload goes from
        // underload to overload.
        let sched = CostSchedule::constant_multiplier(2.0);
        let cfg = SimConfig::paper_default().with_cost_schedule(sched);
        let sim = Simulator::new(unit_network(millis(5)), cfg);
        let arrivals = uniform_arrivals(150.0, 10.0);
        let report = sim.run(&arrivals, &mut NoShedding, secs(10));
        // Effective cost 10 ms → capacity 97/s < 150/s: overload.
        assert!(report.periods.last().unwrap().outstanding > 100);
    }

    #[test]
    fn measured_cost_matches_configured_cost() {
        let sim = Simulator::new(unit_network(millis(5)), SimConfig::paper_default());
        let arrivals = uniform_arrivals(100.0, 10.0);
        let mut costs = Vec::new();
        let mut hook = |s: &PeriodSnapshot| {
            if let Some(c) = s.measured_cost_us {
                costs.push(c);
            }
            Decision::NONE
        };
        let _ = sim.run(&arrivals, &mut hook, secs(10));
        assert!(!costs.is_empty());
        for c in &costs {
            assert!((c - 5000.0).abs() < 100.0, "cost {c}");
        }
    }

    #[test]
    fn per_entry_drop_probabilities_respected() {
        // Two-entry network; drop everything on entry 1, nothing on 0.
        let mut b = NetworkBuilder::new();
        let a = b.add("a", micros(100), Map::identity());
        let c = b.add("c", micros(100), Map::identity());
        b.entry(a);
        b.entry(c);
        let net = b.build().unwrap();
        let sim = Simulator::new(net, SimConfig::paper_default());
        let arrivals = uniform_arrivals(500.0, 10.0);
        let mut hook = |_s: &PeriodSnapshot| Decision::per_entry(vec![0.0, 1.0]);
        let report = sim.run(&arrivals, &mut hook, secs(10));
        // After the first (unshed) period, stream 1 loses everything:
        // overall loss just under one half.
        let loss = report.loss_ratio();
        assert!(loss > 0.40 && loss < 0.50, "loss {loss}");
        // Stream 0's operator processed far more than stream 1's.
        let stats = &report.node_stats;
        assert!(stats[0].processed > stats[1].processed * 5);
    }

    #[test]
    fn node_stats_track_selectivity() {
        let mut b = NetworkBuilder::new();
        let f = b.add("f", millis(1), Filter::value_below(0.3));
        let m = b.add("m", millis(1), Map::identity());
        b.connect(f, m);
        b.entry(f);
        let net = b.build().unwrap();
        let sim = Simulator::new(net, SimConfig::paper_default().with_seed(5));
        let arrivals = uniform_arrivals(100.0, 20.0);
        let report = sim.run(&arrivals, &mut NoShedding, secs(20));
        let f_stat = &report.node_stats[0];
        assert_eq!(f_stat.name, "f");
        assert_eq!(f_stat.processed, 2000);
        let sel = f_stat.observed_selectivity();
        assert!((sel - 0.3).abs() < 0.05, "observed selectivity {sel}");
        // Map is 1:1.
        let m_stat = &report.node_stats[1];
        assert_eq!(m_stat.processed, m_stat.emitted);
    }

    #[test]
    fn semantic_shedding_keeps_high_value_tuples() {
        use crate::operator::OperatorLogic;
        // Record surviving values via a custom sink operator.
        struct Recorder(std::sync::Arc<parking_lot::Mutex<Vec<f64>>>);
        impl OperatorLogic for Recorder {
            fn kind(&self) -> &'static str {
                "recorder"
            }
            fn process(
                &mut self,
                _port: usize,
                tuple: &Tuple,
                _now: SimTime,
                _out: &mut OutputBuffer,
            ) {
                self.0.lock().push(tuple.value);
            }
        }

        let run = |policy: ShedPolicy| {
            let values = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut b = NetworkBuilder::new();
            let m = b.add("m", millis(5), Map::identity());
            let r = b.add("rec", micros(1), Recorder(values.clone()));
            b.connect(m, r);
            b.entry(m);
            let net = b.build().unwrap();
            let sim = Simulator::new(net, SimConfig::paper_default().with_shed_policy(policy));
            let arrivals = uniform_arrivals(400.0, 20.0);
            // Shed *less* than the per-period excess (400 in, ~194
            // processed, shed ~160): a standing buffer remains, so the
            // victim-selection policy has a population to choose from.
            let mut hook = |s: &PeriodSnapshot| {
                if s.k >= 1 {
                    Decision::network(800_000.0)
                } else {
                    Decision::NONE
                }
            };
            let _ = sim.run(&arrivals, &mut hook, secs(20));
            let v = values.lock();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let random_mean = run(ShedPolicy::NewestFirst);
        let semantic_mean = run(ShedPolicy::LowestValueFirst);
        // Values are U[0,1): random shedding keeps mean ≈ 0.5, semantic
        // shedding keeps the upper part of the distribution.
        assert!(
            semantic_mean > random_mean + 0.1,
            "semantic {semantic_mean} vs random {random_mean}"
        );
    }

    #[test]
    fn oldest_first_policy_sheds_the_longest_waiting() {
        let net = unit_network(millis(5));
        let sim = Simulator::new(
            net,
            SimConfig::paper_default().with_shed_policy(ShedPolicy::OldestFirst),
        );
        let arrivals = uniform_arrivals(400.0, 10.0);
        let mut hook = |s: &PeriodSnapshot| {
            if s.k == 5 {
                Decision::network(3_000_000.0)
            } else {
                Decision::NONE
            }
        };
        let report = sim.run(&arrivals, &mut hook, secs(10));
        assert!(report.dropped_network > 0);
        // Dropping the oldest clears the head of the line: tuples that
        // complete right after the shed have small delays.
        assert!(report.completed > 0);
    }

    #[test]
    fn lsrm_policy_sheds_cheapest_utility_first() {
        // Two independent chains: stream A is expensive (10 ms/tuple),
        // stream B cheap (2 ms/tuple); equal yields. The LSRM ratio
        // prefers dropping A's tuples — more load saved per output lost.
        let build = || {
            let mut b = NetworkBuilder::new();
            let a_in = b.add("a_in", millis(1), Map::identity());
            let a_work = b.add("a_work", millis(9), Map::identity());
            let b_in = b.add("b_in", millis(1), Map::identity());
            let b_work = b.add("b_work", millis(1), Map::identity());
            b.connect(a_in, a_work);
            b.connect(b_in, b_work);
            b.entry(a_in);
            b.entry(b_in);
            b.build().unwrap()
        };
        let run = |policy: ShedPolicy| {
            let sim = Simulator::new(
                build(),
                SimConfig::paper_default().with_shed_policy(policy),
            );
            // 2× overload: capacity = 0.97/6ms ≈ 162/s vs 300/s offered.
            let arrivals = uniform_arrivals(300.0, 20.0);
            let mut hook = |s: &PeriodSnapshot| {
                if s.k >= 1 {
                    Decision::network(900_000.0)
                } else {
                    Decision::NONE
                }
            };
            sim.run(&arrivals, &mut hook, secs(20))
        };
        let lsrm = run(ShedPolicy::LsrmRatio);
        assert!(lsrm.dropped_network > 0);
        // Under LSRM, stream B (cheap) is protected: its operators see
        // clearly more tuples than stream A's. (The preference is bounded
        // because shedding only acts on what is *queued* at boundaries —
        // between boundaries FIFO admission is stream-blind.)
        let a_processed = lsrm.node_stats[0].processed;
        let b_processed = lsrm.node_stats[2].processed;
        assert!(
            b_processed as f64 > a_processed as f64 * 1.25,
            "B {b_processed} vs A {a_processed}"
        );
        // Newest-first is stream-blind: roughly equal.
        let blind = run(ShedPolicy::NewestFirst);
        let a2 = blind.node_stats[0].processed as f64;
        let b2 = blind.node_stats[2].processed as f64;
        assert!((a2 / b2 - 1.0).abs() < 0.35, "A {a2} vs B {b2}");
        // Same load target → LSRM completes at least as many outputs.
        assert!(lsrm.completed >= blind.completed);
    }

    #[test]
    fn pacing_throttles_to_wall_clock() {
        // 2 simulated seconds at 20× speed ⇒ ≥ ~95 ms of wall time.
        let cfg = SimConfig::paper_default().with_pacing(20.0);
        let sim = Simulator::new(unit_network(millis(5)), cfg);
        let arrivals = uniform_arrivals(100.0, 2.0);
        let t0 = std::time::Instant::now();
        let report = sim.run(&arrivals, &mut NoShedding, secs(2));
        let wall = t0.elapsed();
        assert_eq!(report.completed, 200);
        assert!(
            wall >= std::time::Duration::from_millis(90),
            "paced run finished in {wall:?}"
        );
        // Unpaced, the same run takes well under 10 ms.
        let sim2 = Simulator::new(unit_network(millis(5)), SimConfig::paper_default());
        let t1 = std::time::Instant::now();
        let _ = sim2.run(&arrivals, &mut NoShedding, secs(2));
        assert!(t1.elapsed() < wall / 3);
    }

    #[test]
    fn node_stats_report_shed_and_cost_ewma() {
        use crate::telemetry::{SharedRecorder, SpanKind};
        let rec = SharedRecorder::with_capacity(32);
        let net = unit_network(millis(5));
        let sim = Simulator::new(net, SimConfig::paper_default()).with_telemetry(rec.clone());
        let arrivals = uniform_arrivals(400.0, 10.0);
        let mut hook = |s: &PeriodSnapshot| {
            if s.k >= 2 {
                Decision::network(500_000.0)
            } else {
                Decision::NONE
            }
        };
        let report = sim.run(&arrivals, &mut hook, secs(10));
        let stat = &report.node_stats[0];
        assert!(stat.shed > 0, "in-network victims attributed to the node");
        assert_eq!(stat.shed, report.dropped_network);
        // Constant 5 ms cost → the EWMA converges to 5000 µs exactly.
        assert!((stat.cost_ewma_us - 5000.0).abs() < 1.0, "{}", stat.cost_ewma_us);
        // The engine timed its shed operations into the shared recorder.
        let span = rec.span_stats(SpanKind::Shedder);
        assert!(span.count >= 7, "one shed per period from k=2, got {}", span.count);
    }

    #[test]
    fn spans_decompose_sampled_sojourn_exactly() {
        // A two-operator chain under 2× overload: sampled roots accrue
        // real queueing, and the virtual-time decomposition must satisfy
        // sojourn = ring_wait + execute *exactly* (sums and counts).
        use crate::spans::Stage;
        let mut b = NetworkBuilder::new();
        let a = b.add("a", millis(2), Map::identity());
        let m = b.add("m", millis(3), Map::scale(2.0));
        b.connect(a, m);
        b.entry(a);
        let registry = crate::spans::SpanRegistry::new();
        let sim = Simulator::new(b.build().unwrap(), SimConfig::paper_default())
            .with_spans(registry.handle("sim"), 8);
        let report = sim.run(&uniform_arrivals(400.0, 5.0), &mut NoShedding, secs(5));
        assert!(report.completed > 0);
        let prof = registry.snapshot();
        let sojourn = &prof.sojourn;
        let ring = &prof.stages[Stage::RingWait.index()];
        let exec = &prof.stages[Stage::Execute.index()];
        assert!(sojourn.count() > 10, "sampled {} sojourns", sojourn.count());
        assert_eq!(sojourn.count(), ring.count());
        assert_eq!(sojourn.count(), exec.count());
        assert_eq!(sojourn.sum(), ring.sum() + exec.sum());
        // Each sampled root ran both operators at least once before its
        // departing invocation, so execute time is strictly positive, and
        // the overloaded queue dominates the sojourn.
        assert!(exec.sum() > 0);
        assert!(ring.sum() > exec.sum());
    }

    #[test]
    fn unused_operator_has_nan_cost_ewma() {
        // Filter passes ~nothing downstream → downstream op may never run.
        let mut b = NetworkBuilder::new();
        let f = b.add("f", millis(1), Filter::value_below(0.0));
        let m = b.add("m", millis(1), Map::identity());
        b.connect(f, m);
        b.entry(f);
        let sim = Simulator::new(b.build().unwrap(), SimConfig::paper_default());
        let report = sim.run(&uniform_arrivals(50.0, 2.0), &mut NoShedding, secs(2));
        assert!(report.node_stats[0].cost_ewma_us.is_finite());
        assert!(report.node_stats[1].cost_ewma_us.is_nan());
        assert_eq!(report.node_stats[1].shed, 0);
    }

    #[test]
    fn empty_arrivals_still_run_periods() {
        let sim = Simulator::new(unit_network(millis(1)), SimConfig::paper_default());
        let report = sim.run(&[], &mut NoShedding, secs(5));
        assert_eq!(report.periods.len(), 5);
        assert_eq!(report.offered, 0);
        assert_eq!(report.loss_ratio(), 0.0);
    }
}
