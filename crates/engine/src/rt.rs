//! A real-time (wall-clock) runner.
//!
//! The paper's evaluation runs on the real Borealis engine; the virtual
//! time [`Simulator`](crate::sim::Simulator) replaces it for
//! reproducibility. This module demonstrates that the same control loop
//! drives a *real* threaded pipeline: a worker thread consumes tuples from
//! a queue, spending a configurable CPU time per tuple, while a controller
//! thread samples the queue every control period and actuates shedding
//! through the identical [`ControlHook`] interface.
//!
//! The runner models a single logical operator path (the aggregate plant
//! `G(z) = cT/(H(z−1))` — per the paper's §4.2, path structure only
//! changes the constant `c`), so it is intentionally simpler than the
//! simulator's full DAG. The worker/supervisor machinery itself lives in
//! [`worker`](crate::worker), shared with the sharded data plane in
//! [`shard`](crate::shard).
//!
//! The pipeline is hardened against the faults a real deployment sees:
//! the tuple queue is a **bounded lock-free ring** (arrivals rejected at
//! capacity are accounted in their own `rejected_capacity` bucket,
//! giving natural backpressure instead of unbounded memory growth); a
//! **panicking worker is caught and restarted** in place, losing only
//! the tuple it was processing; and the controller thread counts
//! **deadline misses** — period boundaries serviced more than half a
//! period late, e.g. because the hook itself overran.
//!
//! Like the sharded engine, ingestion is batch-first:
//! [`RtEngine::offer_batch`] admits up to 1024 arrivals per internal
//! chunk with one entry-shedder pass, one timestamp, and one ring
//! reservation.

use crate::hook::{ControlHook, PeriodSnapshot};
use crate::obs::{MetricsFn, ObsHandle, ObsOptions, ObsServer};
use crate::ring::{Push, SpscRing};
use crate::rng::AtomicShedder;
use crate::shard::{BatchResult, OFFER_BATCH_MAX};
use crate::telemetry::{InstrumentedHook, PromText, Ring, TracingHook};
use crate::time::{SimDuration, SimTime};
use crate::worker::{spawn_supervised, CostModel, WorkerConfig, WorkerStats};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the real-time runner.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// CPU time consumed per tuple.
    pub cost: Duration,
    /// Control period.
    pub period: Duration,
    /// Delay target for violation accounting.
    pub target_delay: Duration,
    /// Headroom: the worker inflates the per-tuple service time by `1/H`.
    pub headroom: f64,
    /// Capacity of the tuple queue; arrivals beyond it are rejected and
    /// counted `rejected_at_capacity` (backpressure).
    pub queue_capacity: usize,
    /// Fault injection: the worker panics while processing the n-th tuple
    /// (1-based). The engine must survive, restart the worker, and keep
    /// processing.
    pub panic_on_tuple: Option<u64>,
    /// Sojourn sampling rate for the latency truth plane: roughly every
    /// Nth admitted tuple is span-tracked end to end
    /// ([`spans`](crate::spans)). `0` disables; only active when spawned
    /// observed.
    pub sample_every: u32,
}

impl RtConfig {
    /// A fast demo configuration: 2 ms tuples, 100 ms period, 200 ms
    /// target.
    pub fn demo() -> Self {
        Self {
            cost: Duration::from_millis(2),
            period: Duration::from_millis(100),
            target_delay: Duration::from_millis(200),
            headroom: 0.97,
            queue_capacity: 4096,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        }
    }
}

struct Shared {
    // f64 bit pattern; Ordering::Relaxed is fine for control signals.
    alpha_bits: AtomicU64,
    offered: AtomicU64,
    dropped_entry: AtomicU64,
    rejected_capacity: AtomicU64,
    rejected_closed: AtomicU64,
    deadline_misses: AtomicU64,
    // Controller hot-path span accounting (wall-clock time inside the
    // hook), for the Prometheus snapshot.
    hook_ns_total: AtomicU64,
    hook_ns_max: AtomicU64,
    periods: AtomicU64,
    stop: AtomicBool,
    /// Entry shedder shared by concurrent `offer()` callers (hybrid
    /// Bernoulli / geometric-skip, see [`AtomicShedder`]).
    shedder: AtomicShedder,
    /// Admitted-tuple accumulator driving sojourn sampling.
    sample_acc: AtomicU64,
    /// Controller-side period log. Preallocated ring, locked only by the
    /// controller thread (once per period) and at shutdown — never on the
    /// `offer()`/worker path, so feeding tuples cannot block on it.
    hook_log: Mutex<Ring<PeriodSnapshot>>,
}

/// Capacity of the controller's period-snapshot ring. At the demo's
/// 100 ms period this retains the most recent ~13 minutes; a fixed cap
/// keeps the log allocation-free for the run's lifetime.
const HOOK_LOG_CAPACITY: usize = 8192;

impl Shared {
    fn new() -> Self {
        Self {
            alpha_bits: AtomicU64::new(0.0f64.to_bits()),
            offered: AtomicU64::new(0),
            dropped_entry: AtomicU64::new(0),
            rejected_capacity: AtomicU64::new(0),
            rejected_closed: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            hook_ns_total: AtomicU64::new(0),
            hook_ns_max: AtomicU64::new(0),
            periods: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            shedder: AtomicShedder::new(0x9E3779B97F4A7C15),
            sample_acc: AtomicU64::new(0),
            hook_log: Mutex::new(Ring::with_capacity(HOOK_LOG_CAPACITY)),
        }
    }

    fn alpha(&self) -> f64 {
        f64::from_bits(self.alpha_bits.load(Ordering::Relaxed))
    }
}

/// Final report of a real-time run.
#[derive(Debug, Clone, PartialEq)]
pub struct RtReport {
    /// Tuples offered to the engine.
    pub offered: u64,
    /// Tuples dropped by the entry shedder (α decisions only; disjoint
    /// from the rejection buckets below).
    pub dropped_entry: u64,
    /// Tuples dropped by in-queue shedding.
    pub dropped_shed: u64,
    /// Tuples fully processed.
    pub completed: u64,
    /// Tuples rejected because the bounded queue was full.
    pub rejected_at_capacity: u64,
    /// Tuples rejected because the engine was already shut down (the
    /// worker's channel was closed). Accounted separately from
    /// [`Self::dropped_entry`] so shutdown races are not conflated with
    /// real shedding.
    pub rejected_closed: u64,
    /// Worker panics caught and recovered from.
    pub worker_panics: u64,
    /// Control-period boundaries serviced more than half a period late.
    pub deadline_misses: u64,
    /// Mean delay of completed tuples, ms.
    pub mean_delay_ms: f64,
    /// Maximum delay, ms.
    pub max_delay_ms: f64,
    /// Completed tuples whose delay exceeded the target.
    pub delayed_tuples: u64,
    /// Σ (delay − target)⁺ over completed tuples, ms.
    pub accumulated_violation_ms: f64,
    /// Snapshots the controller saw, for post-hoc inspection.
    pub snapshots: Vec<PeriodSnapshot>,
}

impl RtReport {
    /// Data loss ratio: entry-shedder drops, capacity rejections, and
    /// in-queue shedding over everything offered (shutdown rejections
    /// are not losses the running system chose, so they count toward the
    /// denominator only).
    pub fn loss_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.dropped_entry + self.rejected_at_capacity + self.dropped_shed) as f64
                / self.offered as f64
        }
    }
}

/// Handle for feeding tuples into a running real-time engine.
pub struct RtEngine {
    shared: Arc<Shared>,
    work: Arc<WorkerStats>,
    ring: Arc<SpscRing>,
    worker: Option<JoinHandle<()>>,
    controller: Option<JoinHandle<()>>,
    cfg: RtConfig,
    obs: Option<ObsHandle>,
}

impl RtEngine {
    /// Spawns the worker and controller threads.
    pub fn spawn<H>(cfg: RtConfig, hook: H) -> Self
    where
        H: ControlHook + Send + 'static,
    {
        Self::spawn_inner(cfg, hook, None)
    }

    fn spawn_inner<H>(
        cfg: RtConfig,
        mut hook: H,
        spans: Option<&crate::spans::SpanRegistry>,
    ) -> Self
    where
        H: ControlHook + Send + 'static,
    {
        assert!(cfg.headroom > 0.0 && cfg.headroom <= 1.0);
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        // Sampling marks are only closed by a span-carrying worker, so a
        // plain (unobserved) engine disables them and pays nothing.
        let mut cfg = cfg;
        if spans.is_none() {
            cfg.sample_every = 0;
        }
        let shared = Arc::new(Shared::new());
        let work = Arc::new(WorkerStats::new());
        let ring = Arc::new(SpscRing::new(cfg.queue_capacity));

        let worker = spawn_supervised(
            Arc::clone(&work),
            Arc::clone(&ring),
            WorkerConfig {
                cost: cfg.cost,
                headroom: cfg.headroom,
                target_delay: cfg.target_delay,
                panic_on_tuple: cfg.panic_on_tuple,
                cost_model: CostModel::Sleep,
                pin_core: None,
                spans: spans.map(|r| r.handle("rt")),
            },
        );

        let controller = {
            let shared = Arc::clone(&shared);
            let work = Arc::clone(&work);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let start = Instant::now();
                let mut k = 0u64;
                let mut last = Counters::default();
                while !shared.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(cfg.period);
                    // Deadline accounting: boundary k is due at
                    // start + (k+1)·T; treat > T/2 lateness (slow hook,
                    // overrun, scheduler stall) as a missed deadline.
                    let due = cfg.period.mul_f64((k + 1) as f64);
                    if start.elapsed().saturating_sub(due) > cfg.period / 2 {
                        shared.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    let now = Counters::read(&shared, &work);
                    let delta = now.minus(&last);
                    last = now;
                    let period = SimDuration(cfg.period.as_micros() as u64);
                    let completed = delta.completed;
                    // The controller's view of front-door loss stays
                    // inclusive: α drops and capacity rejections both
                    // reduce admitted load, even though the report
                    // ledger keeps the buckets disjoint.
                    let front_door_drops = delta.dropped_entry + delta.rejected_capacity;
                    let snapshot = PeriodSnapshot {
                        k,
                        now: SimTime(start.elapsed().as_micros() as u64),
                        period,
                        offered: delta.offered,
                        admitted: delta
                            .offered
                            .saturating_sub(front_door_drops + delta.rejected_closed),
                        dropped_entry: front_door_drops,
                        dropped_network: delta.dropped_shed,
                        completed,
                        outstanding: work.queue_len.load(Ordering::Relaxed),
                        queued_tuples: work.queue_len.load(Ordering::Relaxed),
                        queued_load_us: work.queue_len.load(Ordering::Relaxed) as f64
                            * cfg.cost.as_micros() as f64,
                        measured_cost_us: Some(cfg.cost.as_micros() as f64),
                        mean_delay_ms: if completed > 0 {
                            Some(delta.delay_sum_us as f64 / completed as f64 / 1e3)
                        } else {
                            None
                        },
                        cpu_busy_us: completed * cfg.cost.as_micros() as u64,
                    };
                    let t0 = Instant::now();
                    let decision = hook.on_period(&snapshot);
                    let hook_ns = t0.elapsed().as_nanos() as u64;
                    shared.hook_ns_total.fetch_add(hook_ns, Ordering::Relaxed);
                    shared.hook_ns_max.fetch_max(hook_ns, Ordering::Relaxed);
                    shared.periods.fetch_add(1, Ordering::Relaxed);
                    shared.hook_log.lock().push(snapshot);
                    let new_bits = decision.entry_drop_prob.clamp(0.0, 1.0).to_bits();
                    let old_bits = shared.alpha_bits.swap(new_bits, Ordering::Relaxed);
                    if old_bits != new_bits {
                        // A sampled skip is only valid under the α it was
                        // drawn for; force the next offer() to resample.
                        shared.shedder.reset_skip();
                    }
                    if decision.shed_load_us > 0.0 {
                        let tuples =
                            (decision.shed_load_us / cfg.cost.as_micros() as f64).ceil() as u64;
                        work.shed_budget.fetch_add(tuples, Ordering::Relaxed);
                    }
                    k += 1;
                }
            })
        };

        Self {
            shared,
            work,
            ring,
            worker: Some(worker),
            controller: Some(controller),
            cfg,
            obs: None,
        }
    }

    /// Spawns the engine with the live observability plane attached:
    /// the hook is wrapped in a [`TracingHook`] feeding an
    /// [`ObsPlane`](crate::obs::ObsPlane) (trace ring + controller-health
    /// diagnostics + optional flight recorder), and — when
    /// `options.http` is set — an HTTP server serving `/metrics`,
    /// `/health`, `/ready` and `/trace` for this engine. Fails only if
    /// the HTTP bind fails.
    pub fn spawn_observed<H>(cfg: RtConfig, hook: H, options: &ObsOptions) -> std::io::Result<Self>
    where
        H: InstrumentedHook + Send + 'static,
    {
        let plane = crate::obs::ObsPlane::new(options);
        let traced = TracingHook::with_sink(hook, plane.clone());
        let spans = plane.spans().clone();
        let mut engine = Self::spawn_inner(cfg, traced, Some(&spans));
        let server = match &options.http {
            Some(http) => {
                let shared = Arc::clone(&engine.shared);
                let work = Arc::clone(&engine.work);
                let diag_plane = plane.clone();
                let metrics: MetricsFn = Arc::new(move || {
                    let mut p = PromText::new("streamshed");
                    render_prometheus(&shared, &work, &mut p);
                    diag_plane.health().render_prom(&mut p);
                    diag_plane.render_adapt_prom(&mut p);
                    diag_plane.spans().snapshot().render_prom(&mut p);
                    p.finish()
                });
                Some(ObsServer::start(http.clone(), plane.clone(), metrics)?)
            }
            None => None,
        };
        engine.obs = Some(ObsHandle::from_parts(plane, server));
        Ok(engine)
    }

    /// The observability attachment, when spawned via
    /// [`RtEngine::spawn_observed`].
    pub fn obs(&self) -> Option<&ObsHandle> {
        self.obs.as_ref()
    }

    /// Offers one tuple. Returns `false` if the entry shedder dropped it,
    /// the bounded queue rejected it, or the worker is gone.
    ///
    /// The entry shedder is the hybrid of [`AtomicShedder`]: geometric
    /// skip sampling below `rng::BERNOULLI_ALPHA_MIN` (most offers only
    /// decrement the shared skip counter; an RNG draw happens once per
    /// drop and once per α change), a per-arrival coin flip above it
    /// (where frequent drops make skip resampling a net loss).
    pub fn offer(&self) -> bool {
        self.shared.offered.fetch_add(1, Ordering::Relaxed);
        let alpha = self.shared.alpha();
        if alpha > 0.0 && self.shared.shedder.should_drop(alpha) {
            self.shared.dropped_entry.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut stamp = self.ring.stamp_now();
        if crate::spans::sample_crossings(&self.shared.sample_acc, self.cfg.sample_every, 1) > 0 {
            stamp |= crate::spans::SAMPLE_BIT;
        }
        match self.ring.push(stamp) {
            Push::Pushed(1) => {
                self.work.queue_len.fetch_add(1, Ordering::Relaxed);
                true
            }
            Push::Pushed(_) => {
                // Backpressure: the bounded ring is full.
                self.shared.rejected_capacity.fetch_add(1, Ordering::Relaxed);
                false
            }
            Push::Closed => {
                // Shutdown race, not shedding: account separately.
                self.shared.rejected_closed.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Offers `n` tuples in one batched admission: one entry-shedder
    /// pass, one timestamp, and one ring reservation per internal chunk
    /// of up to 1024 arrivals. Statistically identical to `n` calls of
    /// [`offer`](Self::offer) — the batch pass replays the exact
    /// decision sequence the scalar path would have made from the same
    /// shedder state.
    pub fn offer_batch(&self, n: usize) -> BatchResult {
        let mut res = BatchResult::default();
        let mut remaining = n;
        while remaining > 0 {
            let chunk = remaining.min(OFFER_BATCH_MAX);
            remaining -= chunk;
            self.shared
                .offered
                .fetch_add(chunk as u64, Ordering::Relaxed);
            res.offered += chunk as u64;
            let alpha = self.shared.alpha();
            let drops = self.shared.shedder.shed_batch(alpha, chunk as u64);
            if drops > 0 {
                self.shared.dropped_entry.fetch_add(drops, Ordering::Relaxed);
                res.dropped_entry += drops;
            }
            let admit = (chunk as u64 - drops) as usize;
            if admit == 0 {
                continue;
            }
            let stamp = self.ring.stamp_now();
            // Mark the sampled head of the sub-batch so the worker closes
            // a sojourn for 1-in-`sample_every` admitted tuples on average.
            let marked = crate::spans::sample_crossings(
                &self.shared.sample_acc,
                self.cfg.sample_every,
                admit as u64,
            )
            .min(admit as u64) as usize;
            let mut got: u64 = 0;
            let mut closed = false;
            for (count, s) in [
                (marked, stamp | crate::spans::SAMPLE_BIT),
                (admit - marked, stamp),
            ] {
                if count == 0 || closed {
                    continue;
                }
                match self.ring.push_repeat(s, count) {
                    Push::Pushed(g) => got += g as u64,
                    Push::Closed => closed = true,
                }
            }
            if got > 0 {
                self.work.queue_len.fetch_add(got, Ordering::Relaxed);
                res.dispatched += got;
            }
            if closed {
                let short = admit as u64 - got;
                self.shared
                    .rejected_closed
                    .fetch_add(short, Ordering::Relaxed);
                res.rejected_closed += short;
            } else if got < admit as u64 {
                let short = admit as u64 - got;
                self.shared
                    .rejected_capacity
                    .fetch_add(short, Ordering::Relaxed);
                res.rejected_capacity += short;
            }
        }
        res
    }

    /// Keyed variant of [`offer_batch`](Self::offer_batch). The
    /// single-worker engine has one queue, so keys do not affect
    /// routing; per-arrival shed decisions are still made in key order,
    /// mirroring the sharded engine's semantics.
    pub fn offer_batch_keyed(&self, keys: &[u64]) -> BatchResult {
        self.offer_batch(keys.len())
    }

    /// Lazy-key variant mirroring
    /// [`ShardedEngine::offer_batch_keyed_with`](crate::shard::ShardedEngine::offer_batch_keyed_with):
    /// the single-worker engine routes by queue, not key, so the keys
    /// are never materialized at all — the network plane's
    /// shed-before-decode path degenerates to a pure count admission.
    pub fn offer_batch_keyed_with<F>(&self, n: usize, _key_at: F) -> BatchResult
    where
        F: FnMut(usize) -> u64,
    {
        self.offer_batch(n)
    }

    /// Current queue length (outstanding tuples).
    pub fn queue_len(&self) -> u64 {
        self.work.queue_len.load(Ordering::Relaxed)
    }

    /// A live snapshot of the engine's counters in the Prometheus text
    /// exposition format (`streamshed_*` metrics) — what a `/metrics`
    /// endpoint would serve. Callable at any point while the engine runs;
    /// reads are relaxed atomics, so the snapshot is cheap and
    /// non-blocking.
    pub fn prometheus_text(&self) -> String {
        let mut p = PromText::new("streamshed");
        render_prometheus(&self.shared, &self.work, &mut p);
        if let Some(obs) = &self.obs {
            obs.plane.health().render_prom(&mut p);
            obs.plane.render_adapt_prom(&mut p);
        }
        p.finish()
    }
}

/// Renders the engine's counter/gauge families into `p` — shared by
/// [`RtEngine::prometheus_text`] and the observed-mode `/metrics`
/// closure (which captures the same atomics without the engine handle).
fn render_prometheus(s: &Shared, w: &WorkerStats, p: &mut PromText) {
    let completed = w.completed.load(Ordering::Relaxed);
    let delay_sum_us = w.delay_sum_us.load(Ordering::Relaxed);
    let periods = s.periods.load(Ordering::Relaxed);
    let hook_total = s.hook_ns_total.load(Ordering::Relaxed);
    p.counter(
            "offered_total",
            "Tuples offered to the engine",
            s.offered.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "dropped_entry_total",
            "Tuples dropped by the entry shedder (alpha decisions only)",
            s.dropped_entry.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "dropped_shed_total",
            "Tuples dropped by in-queue shedding",
            w.dropped_shed.load(Ordering::Relaxed) as f64,
        )
        .counter("completed_total", "Tuples fully processed", completed as f64)
        .counter(
            "rejected_capacity_total",
            "Arrivals rejected because the bounded queue was full",
            s.rejected_capacity.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "rejected_closed_total",
            "Arrivals rejected because the engine was shut down",
            s.rejected_closed.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "worker_panics_total",
            "Worker panics caught and recovered",
            w.worker_panics.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "deadline_misses_total",
            "Control-period boundaries serviced more than T/2 late",
            s.deadline_misses.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "delayed_total",
            "Completed tuples whose delay exceeded the target",
            w.delayed.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "violation_us_total",
            "Accumulated delay violation over completed tuples, microseconds",
            w.violation_sum_us.load(Ordering::Relaxed) as f64,
        )
        .counter(
            "control_periods_total",
            "Control-hook invocations",
            periods as f64,
        )
        .counter(
            "hook_time_ns_total",
            "Wall-clock nanoseconds spent inside the control hook",
            hook_total as f64,
        )
        .gauge(
            "hook_time_max_ns",
            "Longest single control-hook invocation, nanoseconds",
            s.hook_ns_max.load(Ordering::Relaxed) as f64,
        )
        .gauge(
            "queue_len",
            "Tuples currently queued",
            w.queue_len.load(Ordering::Relaxed) as f64,
        )
        .gauge("alpha", "Entry drop probability currently in force", s.alpha())
        .gauge(
            "shed_budget",
            "In-queue shed budget outstanding, tuples",
            w.shed_budget.load(Ordering::Relaxed) as f64,
        )
        .gauge(
            "delay_mean_ms",
            "Mean delay of completed tuples, milliseconds",
            if completed > 0 {
                delay_sum_us as f64 / completed as f64 / 1e3
            } else {
                0.0
            },
        )
        .gauge(
            "delay_max_ms",
            "Maximum observed delay, milliseconds",
            w.delay_max_us.load(Ordering::Relaxed) as f64 / 1e3,
        );
}

impl RtEngine {
    /// Stops the engine, joins both threads, and returns the final report.
    pub fn shutdown(mut self) -> RtReport {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.ring.close(); // worker drains the ring and exits
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        if let Some(c) = self.controller.take() {
            let _ = c.join();
        }
        if let Some(mut o) = self.obs.take() {
            o.stop();
        }
        let s = &self.shared;
        let w = &self.work;
        let completed = w.completed.load(Ordering::Relaxed);
        let delay_sum = w.delay_sum_us.load(Ordering::Relaxed);
        RtReport {
            offered: s.offered.load(Ordering::Relaxed),
            dropped_entry: s.dropped_entry.load(Ordering::Relaxed),
            dropped_shed: w.dropped_shed.load(Ordering::Relaxed),
            completed,
            rejected_at_capacity: s.rejected_capacity.load(Ordering::Relaxed),
            rejected_closed: s.rejected_closed.load(Ordering::Relaxed),
            worker_panics: w.worker_panics.load(Ordering::Relaxed),
            deadline_misses: s.deadline_misses.load(Ordering::Relaxed),
            mean_delay_ms: if completed > 0 {
                delay_sum as f64 / completed as f64 / 1e3
            } else {
                0.0
            },
            max_delay_ms: w.delay_max_us.load(Ordering::Relaxed) as f64 / 1e3,
            delayed_tuples: w.delayed.load(Ordering::Relaxed),
            accumulated_violation_ms: w.violation_sum_us.load(Ordering::Relaxed) as f64 / 1e3,
            snapshots: s.hook_log.lock().to_vec(),
        }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &RtConfig {
        &self.cfg
    }
}

impl Drop for RtEngine {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.ring.close();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        if let Some(c) = self.controller.take() {
            let _ = c.join();
        }
        if let Some(mut o) = self.obs.take() {
            o.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultPlan, FaultWindow, FaultyHook};
    use crate::hook::{Decision, NoShedding};

    #[test]
    fn underload_completes_everything() {
        let cfg = RtConfig {
            cost: Duration::from_micros(200),
            period: Duration::from_millis(20),
            target_delay: Duration::from_millis(100),
            headroom: 1.0,
            queue_capacity: 4096,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        let engine = RtEngine::spawn(cfg, NoShedding);
        for _ in 0..200 {
            engine.offer();
            std::thread::sleep(Duration::from_micros(500));
        }
        std::thread::sleep(Duration::from_millis(100));
        let report = engine.shutdown();
        assert_eq!(report.offered, 200);
        assert_eq!(report.completed, 200);
        assert_eq!(report.loss_ratio(), 0.0);
        assert_eq!(report.worker_panics, 0);
        assert_eq!(report.rejected_at_capacity, 0);
        assert_eq!(report.rejected_closed, 0);
        assert!(report.mean_delay_ms < 50.0, "{}", report.mean_delay_ms);
    }

    #[test]
    fn entry_shedding_engages() {
        let cfg = RtConfig {
            cost: Duration::from_micros(500),
            period: Duration::from_millis(10),
            target_delay: Duration::from_millis(20),
            headroom: 1.0,
            queue_capacity: 4096,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        // Fixed 50% shedding from the first period on.
        let hook = |_s: &PeriodSnapshot| Decision::entry(0.5);
        let engine = RtEngine::spawn(cfg, hook);
        std::thread::sleep(Duration::from_millis(25)); // let alpha take effect
        for _ in 0..400 {
            engine.offer();
            std::thread::sleep(Duration::from_micros(100));
        }
        let report = engine.shutdown();
        let ratio = report.dropped_entry as f64 / report.offered as f64;
        assert!(ratio > 0.3 && ratio < 0.7, "ratio {ratio}");
    }

    #[test]
    fn small_alpha_shedding_uses_skip_branch() {
        // α = 0.01 sits below BERNOULLI_ALPHA_MIN, so this exercises the
        // shared skip counter under the same public surface.
        let cfg = RtConfig {
            cost: Duration::from_micros(10),
            period: Duration::from_millis(10),
            target_delay: Duration::from_millis(20),
            headroom: 1.0,
            queue_capacity: 65_536,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        let hook = |_s: &PeriodSnapshot| Decision::entry(0.01);
        let engine = RtEngine::spawn(cfg, hook);
        std::thread::sleep(Duration::from_millis(25));
        let n = 200_000u64;
        for _ in 0..n {
            engine.offer();
        }
        let report = engine.shutdown();
        // `dropped_entry` counts only the entry-shed drops (capacity
        // rejections live in their own bucket).
        let ratio = report.dropped_entry as f64 / report.offered as f64;
        assert!(ratio > 0.003 && ratio < 0.03, "ratio {ratio}");
    }

    #[test]
    fn controller_sees_snapshots() {
        let cfg = RtConfig {
            cost: Duration::from_micros(100),
            period: Duration::from_millis(10),
            target_delay: Duration::from_millis(20),
            headroom: 0.97,
            queue_capacity: 4096,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        let engine = RtEngine::spawn(cfg, NoShedding);
        for _ in 0..50 {
            engine.offer();
        }
        std::thread::sleep(Duration::from_millis(60));
        let report = engine.shutdown();
        assert!(report.snapshots.len() >= 3, "{}", report.snapshots.len());
        let total_offered: u64 = report.snapshots.iter().map(|s| s.offered).sum();
        assert!(total_offered <= 50);
    }

    #[test]
    fn shed_budget_drops_queued_tuples() {
        let cfg = RtConfig {
            cost: Duration::from_millis(5),
            period: Duration::from_millis(10),
            target_delay: Duration::from_millis(20),
            headroom: 1.0,
            queue_capacity: 4096,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        // Shed aggressively every period.
        let hook = |_s: &PeriodSnapshot| Decision::network(50_000.0);
        let engine = RtEngine::spawn(cfg, hook);
        for _ in 0..100 {
            engine.offer();
        }
        std::thread::sleep(Duration::from_millis(120));
        let report = engine.shutdown();
        assert!(report.dropped_shed > 0, "some tuples shed from queue");
    }

    #[test]
    fn survives_injected_worker_panic() {
        let cfg = RtConfig {
            cost: Duration::from_micros(200),
            period: Duration::from_millis(20),
            target_delay: Duration::from_millis(100),
            headroom: 1.0,
            queue_capacity: 4096,
            panic_on_tuple: Some(10),
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        let engine = RtEngine::spawn(cfg, NoShedding);
        for _ in 0..60 {
            engine.offer();
            std::thread::sleep(Duration::from_micros(500));
        }
        std::thread::sleep(Duration::from_millis(100));
        let report = engine.shutdown();
        assert_eq!(report.worker_panics, 1, "one injected panic caught");
        // Everything except the poisoned tuple still completes.
        assert_eq!(report.offered, 60);
        assert_eq!(report.completed, 59, "only the poisoned tuple lost");
    }

    #[test]
    fn bounded_queue_rejects_at_capacity() {
        let cfg = RtConfig {
            cost: Duration::from_millis(10),
            period: Duration::from_millis(50),
            target_delay: Duration::from_millis(100),
            headroom: 1.0,
            queue_capacity: 8,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        let engine = RtEngine::spawn(cfg, NoShedding);
        // Burst far past capacity before the worker can drain anything.
        let mut accepted = 0;
        for _ in 0..100 {
            if engine.offer() {
                accepted += 1;
            }
        }
        let report = engine.shutdown();
        assert!(accepted <= 10, "capacity 8 plus at most in-service slack");
        assert!(report.rejected_at_capacity >= 90, "{}", report.rejected_at_capacity);
        assert_eq!(report.dropped_entry, 0, "no alpha in force: rejections are not shed drops");
        assert_eq!(report.rejected_closed, 0, "no shutdown race in this test");
        assert_eq!(report.offered, 100);
        assert!(report.loss_ratio() >= 0.9, "capacity rejections are losses");
    }

    #[test]
    fn offer_batch_matches_scalar_accounting() {
        let cfg = RtConfig {
            cost: Duration::from_micros(100),
            period: Duration::from_millis(20),
            target_delay: Duration::from_millis(100),
            headroom: 1.0,
            queue_capacity: 4096,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        let engine = RtEngine::spawn(cfg, NoShedding);
        let mut total = crate::shard::BatchResult::default();
        for n in [16usize, 256, 1024, 7] {
            total.merge(&engine.offer_batch(n));
            std::thread::sleep(Duration::from_millis(20));
        }
        std::thread::sleep(Duration::from_millis(50));
        let report = engine.shutdown();
        assert_eq!(total.offered, 1303);
        assert_eq!(total.dispatched, 1303);
        assert_eq!(report.offered, 1303);
        assert_eq!(report.completed, 1303);
        assert_eq!(report.loss_ratio(), 0.0);
    }

    #[test]
    fn offer_batch_sheds_with_alpha() {
        let cfg = RtConfig {
            cost: Duration::from_micros(10),
            period: Duration::from_millis(10),
            target_delay: Duration::from_millis(20),
            headroom: 1.0,
            queue_capacity: 65_536,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        let hook = |_s: &PeriodSnapshot| Decision::entry(0.5);
        let engine = RtEngine::spawn(cfg, hook);
        std::thread::sleep(Duration::from_millis(25));
        let res = engine.offer_batch(20_000);
        let ratio = res.dropped_entry as f64 / res.offered as f64;
        assert!(ratio > 0.45 && ratio < 0.55, "ratio {ratio}");
        assert_eq!(
            res.offered,
            res.dispatched + res.dropped_entry + res.rejected_capacity + res.rejected_closed
        );
        drop(engine);
    }

    #[test]
    fn slow_hook_counts_deadline_misses() {
        let cfg = RtConfig {
            cost: Duration::from_micros(100),
            period: Duration::from_millis(10),
            target_delay: Duration::from_millis(50),
            headroom: 1.0,
            queue_capacity: 4096,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        // A hook that overruns the control period itself.
        let hook = |_s: &PeriodSnapshot| {
            std::thread::sleep(Duration::from_millis(25));
            Decision::NONE
        };
        let engine = RtEngine::spawn(cfg, hook);
        std::thread::sleep(Duration::from_millis(150));
        let report = engine.shutdown();
        assert!(report.deadline_misses >= 1, "{}", report.deadline_misses);
    }

    #[test]
    fn prometheus_snapshot_exposes_live_counters() {
        let cfg = RtConfig {
            cost: Duration::from_micros(200),
            period: Duration::from_millis(10),
            target_delay: Duration::from_millis(50),
            headroom: 1.0,
            queue_capacity: 4096,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        let engine = RtEngine::spawn(cfg, NoShedding);
        for _ in 0..40 {
            engine.offer();
        }
        std::thread::sleep(Duration::from_millis(50));
        let text = engine.prometheus_text();
        assert!(text.contains("# TYPE streamshed_offered_total counter"));
        assert!(text.contains("streamshed_offered_total 40"));
        assert!(text.contains("# TYPE streamshed_queue_len gauge"));
        assert!(text.contains("streamshed_control_periods_total"));
        assert!(text.contains("streamshed_hook_time_ns_total"));
        assert!(text.contains("streamshed_rejected_closed_total 0"));
        // Every sample line has HELP and TYPE preambles.
        let samples = text.lines().filter(|l| !l.starts_with('#')).count();
        let types = text.lines().filter(|l| l.starts_with("# TYPE")).count();
        assert_eq!(samples, types);
        let report = engine.shutdown();
        assert_eq!(report.completed, 40);
    }

    #[test]
    fn observed_engine_serves_live_endpoints() {
        use crate::obs::http_get;
        let cfg = RtConfig {
            cost: Duration::from_micros(200),
            period: Duration::from_millis(20),
            target_delay: Duration::from_millis(100),
            headroom: 1.0,
            queue_capacity: 4096,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        let options = ObsOptions::for_target(cfg.target_delay);
        let engine = RtEngine::spawn_observed(cfg, NoShedding, &options).unwrap();
        let addr = engine.obs().unwrap().addr().expect("http enabled");
        for _ in 0..100 {
            engine.offer();
            std::thread::sleep(Duration::from_micros(200));
        }
        std::thread::sleep(Duration::from_millis(80));
        let t = Duration::from_secs(2);

        let (status, body) = http_get(addr, "/metrics", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("streamshed_offered_total 100"), "{body}");
        assert!(body.contains("# TYPE streamshed_diag_state gauge"), "{body}");

        let (status, body) = http_get(addr, "/health", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"state\":"), "{body}");

        let (status, _) = http_get(addr, "/ready", t).unwrap();
        assert_eq!(status, 200, "periods have elapsed");

        let (status, body) = http_get(addr, "/trace?last=5", t).unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with('[') && body.contains("\"alpha\":"), "{body}");

        // The in-process snapshot carries the diagnostics families too.
        assert!(engine.prometheus_text().contains("streamshed_diag_state"));

        let report = engine.shutdown();
        assert_eq!(report.offered, 100);
        // Server is down after shutdown.
        assert!(http_get(addr, "/health", Duration::from_millis(300)).is_err());
    }

    #[test]
    fn actuator_fault_on_rt_is_survived() {
        let cfg = RtConfig {
            cost: Duration::from_micros(500),
            period: Duration::from_millis(10),
            target_delay: Duration::from_millis(20),
            headroom: 1.0,
            queue_capacity: 4096,
            panic_on_tuple: None,
            sample_every: crate::spans::DEFAULT_SAMPLE_EVERY,
        };
        // Command full shedding but let the actuator fault halve it.
        let plan = FaultPlan::new(5)
            .with(FaultWindow::new(FaultKind::ActuatorPartial { applied: 0.5 }, 0, u64::MAX));
        let hook = FaultyHook::new(|_s: &PeriodSnapshot| Decision::entry(1.0), plan);
        let engine = RtEngine::spawn(cfg, hook);
        std::thread::sleep(Duration::from_millis(25));
        for _ in 0..400 {
            engine.offer();
            std::thread::sleep(Duration::from_micros(100));
        }
        let report = engine.shutdown();
        // α = 0.5 applied instead of 1.0: roughly half dropped, and the
        // process survived to report it.
        let ratio = report.dropped_entry as f64 / report.offered as f64;
        assert!(ratio > 0.25 && ratio < 0.75, "ratio {ratio}");
    }
}

#[derive(Default, Clone, Copy)]
struct Counters {
    offered: u64,
    dropped_entry: u64,
    rejected_capacity: u64,
    rejected_closed: u64,
    dropped_shed: u64,
    completed: u64,
    delay_sum_us: u64,
}

impl Counters {
    fn read(s: &Shared, w: &WorkerStats) -> Self {
        Self {
            offered: s.offered.load(Ordering::Relaxed),
            dropped_entry: s.dropped_entry.load(Ordering::Relaxed),
            rejected_capacity: s.rejected_capacity.load(Ordering::Relaxed),
            rejected_closed: s.rejected_closed.load(Ordering::Relaxed),
            dropped_shed: w.dropped_shed.load(Ordering::Relaxed),
            completed: w.completed.load(Ordering::Relaxed),
            delay_sum_us: w.delay_sum_us.load(Ordering::Relaxed),
        }
    }

    fn minus(&self, other: &Counters) -> Counters {
        Counters {
            offered: self.offered - other.offered,
            dropped_entry: self.dropped_entry - other.dropped_entry,
            rejected_capacity: self.rejected_capacity - other.rejected_capacity,
            rejected_closed: self.rejected_closed - other.rejected_closed,
            dropped_shed: self.dropped_shed - other.dropped_shed,
            completed: self.completed - other.completed,
            delay_sum_us: self.delay_sum_us - other.delay_sum_us,
        }
    }
}
