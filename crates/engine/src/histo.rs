//! Mergeable log-linear-bucket latency histograms (HDR-style).
//!
//! The observability plane needs *tail* percentiles, not means: the
//! paper's contract is a bound on tuple delay, and a mean hides exactly
//! the violations an SLO cares about. This module is the purpose-built
//! substrate: a fixed-size log-linear bucket layout (64 value rows ×
//! 32 sub-buckets, 16 KiB of `u64` counts) that records any `u64` value
//! with **zero allocation**, merges exactly (element-wise bucket
//! addition — merging two histograms is indistinguishable from having
//! recorded the concatenated stream), and answers p50/p90/p99/p999
//! queries with bounded relative error.
//!
//! ## Bucket layout
//!
//! Values `< 32` land in their own exact bucket. For `v >= 32`, let
//! `msb = 63 - v.leading_zeros()`; the row is `msb - 4` and the
//! sub-bucket is the 5 bits below the most significant bit:
//!
//! ```text
//! index(v) = v                                  v < 32
//! index(v) = (msb - 4) * 32 + ((v >> (msb - 5)) & 31)   otherwise
//! ```
//!
//! Each row spans one power of two with 32 linear sub-buckets, so a
//! bucket's width is at most `1/32` of its lower bound: quantile
//! estimates (reported at the bucket midpoint) carry at most ~1.6 %
//! relative error. The top of the layout (`msb = 63`) lands at index
//! 1919; the 64×32 = 2048-slot array keeps the fixed power-of-two
//! layout with the tail rows unreachable for `u64` inputs.
//!
//! Two flavours share the layout: [`Histo`] (plain counts — the query,
//! merge, and single-threaded record side) and [`AtomicHisto`] (relaxed
//! `AtomicU64` counts — the lock-free record side drained by the obs
//! plane via [`AtomicHisto::snapshot`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of count slots: 64 rows × 32 sub-buckets.
pub const BUCKETS: usize = 64 * 32;

/// Bucket index for a value. Total order preserving: `a <= b` implies
/// `index(a) <= index(b)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 32 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        (msb - 4) * 32 + ((v >> (msb - 5)) & 31) as usize
    }
}

/// Lower bound (inclusive) of bucket `idx` — the smallest value that
/// maps to it.
#[inline]
pub fn bucket_low(idx: usize) -> u64 {
    if idx < 32 {
        idx as u64
    } else {
        let row = idx / 32;
        let sub = (idx % 32) as u128;
        let low = (32 + sub) << (row - 1);
        low.min(u64::MAX as u128) as u64
    }
}

/// Upper bound (inclusive) of bucket `idx` — the largest value that
/// maps to it. Saturates at `u64::MAX` (the top reachable bucket ends
/// exactly there).
#[inline]
pub fn bucket_high(idx: usize) -> u64 {
    if idx < 32 {
        idx as u64
    } else {
        let row = idx / 32;
        let sub = (idx % 32) as u128;
        let high = ((33 + sub) << (row - 1)) - 1;
        high.min(u64::MAX as u128) as u64
    }
}

/// Representative value reported for bucket `idx` (its midpoint).
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    let low = bucket_low(idx);
    low + (bucket_high(idx) - low) / 2
}

/// A plain mergeable log-linear histogram. See the module docs for the
/// bucket layout. `record` is allocation-free; the 16 KiB count array
/// is boxed so the struct itself stays cheap to move.
#[derive(Clone)]
pub struct Histo {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histo {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histo")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl Histo {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self`. Exact: the result is element-wise
    /// identical to having recorded both streams into one histogram.
    pub fn merge(&mut self, other: &Histo) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the bucket midpoint of the
    /// bucket holding the `ceil(q * count)`-th smallest recorded value,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(idx).min(self.max);
            }
        }
        self.max
    }

    /// Cumulative count of recorded values whose bucket lies entirely at
    /// or below `bound` — the `_bucket{le="…"}` value for a Prometheus
    /// exposition built on canonical boundaries. Conservative: a bucket
    /// straddling `bound` counts toward the next boundary.
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        let mut total = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if bucket_high(idx) <= bound {
                total += c;
            } else if bucket_low(idx) > bound {
                break;
            }
        }
        total
    }
}

/// The lock-free recording flavour: relaxed `AtomicU64` counts sharing
/// [`Histo`]'s layout. Record from any number of threads without
/// coordination; the obs plane drains it with [`AtomicHisto::snapshot`].
/// Snapshots are racy across buckets (a concurrent `record` may be
/// half-visible) but each bucket is monotone, which is all a scrape
/// needs.
pub struct AtomicHisto {
    counts: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHisto {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AtomicHisto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHisto")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AtomicHisto {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array in place.
        let counts: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .expect("length matches BUCKETS");
        Self {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free, allocation-free, relaxed ordering.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current counts into a plain [`Histo`] for querying and
    /// merging.
    pub fn snapshot(&self) -> Histo {
        let mut h = Histo::new();
        let mut count = 0u64;
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            let c = src.load(Ordering::Relaxed);
            *dst = c;
            count += c;
        }
        // Derive the total from the buckets themselves so the snapshot
        // is internally consistent even mid-record.
        h.count = count;
        h.sum = self.sum.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_below_32() {
        let mut h = Histo::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for q in [0.0, 0.5, 1.0] {
            let got = h.quantile(q);
            assert!(got < 32, "q={q} -> {got}");
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every representable boundary maps into a bucket whose
        // [low, high] range contains it, and indices are monotone.
        let mut prev_idx = 0usize;
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            65,
            1000,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v={v} idx={idx}");
            assert!(bucket_low(idx) <= v && v <= bucket_high(idx), "v={v} idx={idx}");
            assert!(idx >= prev_idx, "monotone violated at v={v}");
            prev_idx = idx;
        }
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = Histo::new();
        for &v in &[100u64, 10_000, 1_000_000, 123_456_789] {
            h.record(v);
        }
        // Single-value quantiles land within 1/32 of the true value.
        let mut single = Histo::new();
        single.record(123_456_789);
        let est = single.quantile(0.5) as f64;
        let rel = (est - 123_456_789.0).abs() / 123_456_789.0;
        assert!(rel <= 1.0 / 32.0, "rel err {rel}");
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let a = AtomicHisto::new();
        let mut p = Histo::new();
        for v in [0u64, 5, 31, 32, 1000, 65_535, 1 << 40] {
            a.record(v);
            p.record(v);
        }
        let s = a.snapshot();
        assert_eq!(s.count(), p.count());
        assert_eq!(s.sum(), p.sum());
        assert_eq!(s.max(), p.max());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(s.quantile(q), p.quantile(q));
        }
    }

    #[test]
    fn cumulative_le_is_monotone_and_total() {
        let mut h = Histo::new();
        for v in [1u64, 3, 17, 900, 70_000, 3_000_000] {
            h.record(v);
        }
        let bounds = [1u64, 4, 16, 64, 256, 1024, 1 << 20, u64::MAX];
        let mut prev = 0;
        for &b in &bounds {
            let c = h.cumulative_le(b);
            assert!(c >= prev, "cumulative must be monotone");
            prev = c;
        }
        assert_eq!(h.cumulative_le(u64::MAX), h.count());
    }

    proptest! {
        /// Satellite: merge() equals recording the concatenated stream,
        /// for any split point and values straddling any bucket
        /// boundary.
        #[test]
        fn merge_equals_concat(
            values in proptest::collection::vec(
                prop_oneof![
                    0u64..64,                 // exact + first log rows
                    30u64..70,                // the linear/log boundary
                    0u64..u64::MAX,           // anywhere
                    (0u32..63).prop_map(|s| 1u64 << s),           // powers of two
                    (1u32..63).prop_map(|s| (1u64 << s) - 1),     // just below
                ],
                0..200,
            ),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((values.len() as f64) * split_frac) as usize;
            let mut whole = Histo::new();
            for &v in &values {
                whole.record(v);
            }
            let mut left = Histo::new();
            let mut right = Histo::new();
            for &v in &values[..split] {
                left.record(v);
            }
            for &v in &values[split..] {
                right.record(v);
            }
            left.merge(&right);
            prop_assert_eq!(left.count(), whole.count());
            prop_assert_eq!(left.sum(), whole.sum());
            prop_assert_eq!(left.max(), whole.max());
            prop_assert_eq!(&left.counts[..], &whole.counts[..]);
            for q in [0.5, 0.9, 0.99, 0.999] {
                prop_assert_eq!(left.quantile(q), whole.quantile(q));
            }
        }

        /// Satellite: quantile monotonicity p50 <= p90 <= p99 <= p999.
        #[test]
        fn quantiles_are_monotone(
            values in proptest::collection::vec(0u64..u64::MAX, 1..300),
        ) {
            let mut h = Histo::new();
            for &v in &values {
                h.record(v);
            }
            let p50 = h.quantile(0.50);
            let p90 = h.quantile(0.90);
            let p99 = h.quantile(0.99);
            let p999 = h.quantile(0.999);
            prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
            prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
            prop_assert!(p99 <= p999, "p99 {p99} > p999 {p999}");
            prop_assert!(p999 <= h.max());
        }

        /// Any value maps to a bucket containing it.
        #[test]
        fn bucket_contains_value(v in 0u64..u64::MAX) {
            let idx = bucket_index(v);
            prop_assert!(idx < BUCKETS);
            prop_assert!(bucket_low(idx) <= v);
            prop_assert!(v <= bucket_high(idx));
        }
    }
}
