//! Structured control-loop telemetry.
//!
//! The paper's claims are *trajectory* claims — the delay `y(k)` settles
//! to the target in ~3 control periods, the shed load tracks the input
//! excess — yet an end-of-run [`RunReport`](crate::metrics::RunReport)
//! only shows aggregates. This module records **why** a run behaved as it
//! did, one structured [`ControlTrace`] per control period, captured at
//! the single seam every runner shares: the [`ControlHook`] boundary.
//!
//! Design constraints, in order:
//!
//! 1. **Zero allocation on the hot path.** The [`RingRecorder`] is
//!    seeded with its full capacity up front; recording a period is a
//!    bounds-checked slot write. When the ring wraps, the oldest records
//!    are overwritten and counted, never reallocated.
//! 2. **One schema for every runner.** The [`TracingHook`] wraps any
//!    [`ControlHook`], so the virtual-time
//!    simulator, the threaded [`rt`](crate::rt) runner, and the fault
//!    harness ([`FaultyHook`](crate::faults::FaultyHook)) all emit
//!    identical records. Controller internals (`ŷ(k)`, `e(k)`, `u(k)`,
//!    supervisor mode, fault flags) flow through the [`InstrumentedHook`]
//!    trait, which hooks implement to expose their last-period state.
//! 3. **Offline-friendly export.** Traces serialise to JSONL
//!    ([`export_jsonl`]) and CSV ([`export_csv`]); live counters render
//!    to the Prometheus text exposition format via [`PromText`] (used by
//!    [`RtEngine::prometheus_text`](crate::rt::RtEngine::prometheus_text)).
//!
//! A recorded trace reconstructs the run's aggregates:
//! [`reconstructed_mean_delay_ms`] recovers the report's mean delay from
//! the per-period records (the `reproduce trace` experiment asserts the
//! two agree to within 1%).

use crate::hook::{ControlHook, Decision, NoShedding, PeriodSnapshot};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Fault flags
// ---------------------------------------------------------------------------

/// Bit set in [`ControlTrace::fault_flags`] when a sensor dropout fired.
pub const FLAG_SENSOR_DROPOUT: u16 = 1 << 0;
/// Bit set when a stale queue reading was served.
pub const FLAG_STALE_QUEUE: u16 = 1 << 1;
/// Bit set when the cost measurement was replaced by NaN.
pub const FLAG_COST_NAN: u16 = 1 << 2;
/// Bit set when the cost measurement was scaled by a spike factor.
pub const FLAG_COST_SPIKE: u16 = 1 << 3;
/// Bit set when the actuator ignored the commanded decision.
pub const FLAG_ACTUATOR_IGNORE: u16 = 1 << 4;
/// Bit set when the actuator applied the command only partially.
pub const FLAG_ACTUATOR_PARTIAL: u16 = 1 << 5;
/// Bit set when the reported control period was jittered.
pub const FLAG_PERIOD_JITTER: u16 = 1 << 6;

/// The `(bit, name)` table of every fault flag, in bit order.
pub const FAULT_FLAGS: [(u16, &str); 7] = [
    (FLAG_SENSOR_DROPOUT, "sensor_dropout"),
    (FLAG_STALE_QUEUE, "stale_queue"),
    (FLAG_COST_NAN, "cost_nan"),
    (FLAG_COST_SPIKE, "cost_spike"),
    (FLAG_ACTUATOR_IGNORE, "actuator_ignore"),
    (FLAG_ACTUATOR_PARTIAL, "actuator_partial"),
    (FLAG_PERIOD_JITTER, "period_jitter"),
];

/// OR of every defined `FLAG_*` bit.
const FAULT_FLAG_MASK: u16 = FLAG_SENSOR_DROPOUT
    | FLAG_STALE_QUEUE
    | FLAG_COST_NAN
    | FLAG_COST_SPIKE
    | FLAG_ACTUATOR_IGNORE
    | FLAG_ACTUATOR_PARTIAL
    | FLAG_PERIOD_JITTER;

/// Iterator over the names of the set fault-flag bits, in bit order.
///
/// Fixed-size state (no allocation per call); returned by
/// [`fault_flag_names`].
#[derive(Debug, Clone, Copy)]
pub struct FaultFlagNames {
    flags: u16,
    idx: usize,
}

impl FaultFlagNames {
    /// Joins the names with `sep` (one allocation for the output only).
    pub fn join(self, sep: &str) -> String {
        let mut out = String::new();
        for name in self {
            if !out.is_empty() {
                out.push_str(sep);
            }
            out.push_str(name);
        }
        out
    }
}

impl Iterator for FaultFlagNames {
    type Item = &'static str;

    fn next(&mut self) -> Option<&'static str> {
        while self.idx < FAULT_FLAGS.len() {
            let (bit, name) = FAULT_FLAGS[self.idx];
            self.idx += 1;
            if self.flags & bit != 0 {
                return Some(name);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining: u16 = FAULT_FLAGS[self.idx..]
            .iter()
            .fold(0, |acc, (bit, _)| acc | bit);
        let n = (self.flags & remaining).count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for FaultFlagNames {}

/// Human-readable names of the set fault-flag bits, for rendering.
/// Returns a fixed-size iterator — no per-call allocation.
pub fn fault_flag_names(flags: u16) -> FaultFlagNames {
    FaultFlagNames {
        flags: flags & FAULT_FLAG_MASK,
        idx: 0,
    }
}

/// The `FLAG_*` bit for a fault-flag name, `None` for unknown names.
/// Inverse of [`fault_flag_names`] — every name round-trips to its bit.
pub fn fault_flag_bit(name: &str) -> Option<u16> {
    FAULT_FLAGS
        .iter()
        .find(|&&(_, n)| n == name)
        .map(|&(bit, _)| bit)
}

// ---------------------------------------------------------------------------
// Loop mode + control state
// ---------------------------------------------------------------------------

/// Which layer produced the period's actuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LoopMode {
    /// An unsupervised strategy (or a plain hook) was in control.
    #[default]
    Direct,
    /// A supervisor was present and its inner strategy was in control.
    Engaged,
    /// A supervisor was holding the last actuation through a sensor
    /// dropout.
    Hold,
    /// A supervisor's open-loop fallback was in control.
    Fallback,
}

impl LoopMode {
    /// Stable lowercase name, used by the exporters.
    pub fn as_str(&self) -> &'static str {
        match self {
            LoopMode::Direct => "direct",
            LoopMode::Engaged => "engaged",
            LoopMode::Hold => "hold",
            LoopMode::Fallback => "fallback",
        }
    }
}

/// Controller-internal signals for one period, reported by an
/// [`InstrumentedHook`] after its `on_period` returns.
///
/// Quantities a hook does not produce stay `NaN` — the exporters render
/// them as JSON `null` / CSV `NaN` rather than inventing zeros.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlState {
    /// Estimated delay `ŷ(k)` from the virtual queue, seconds.
    pub y_hat_s: f64,
    /// Error `e(k) = yd − ŷ(k)`, seconds.
    pub error_s: f64,
    /// Raw controller output `u(k)`, tuples/s.
    pub u_tps: f64,
    /// Per-tuple cost estimate `c(k)` in force, µs.
    pub cost_est_us: f64,
    /// Which layer produced the actuation.
    pub mode: LoopMode,
    /// OR of the `FLAG_*` bits that fired this period.
    pub fault_flags: u16,
}

impl Default for ControlState {
    fn default() -> Self {
        Self {
            y_hat_s: f64::NAN,
            error_s: f64::NAN,
            u_tps: f64::NAN,
            cost_est_us: f64::NAN,
            mode: LoopMode::Direct,
            fault_flags: 0,
        }
    }
}

/// Self-tuning (re-identification) state reported by an adaptive hook
/// after each period — the quantities the `streamshed_adapt_*` metric
/// families and the `adapt_*` trace columns carry.
///
/// Non-adaptive hooks never produce one; the exporters render the
/// absent state as `NaN`/`null` cost, zero counters, and arm `−1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptState {
    /// Current re-identified per-tuple cost estimate `ĉ`, µs.
    pub cost_est_us: f64,
    /// Gain generation: how many tunings this loop has lived through
    /// (0 = still on the initial design).
    pub generation: u64,
    /// Total bumpless parameter swaps performed (gain-schedule snaps
    /// plus comparator arm changes).
    pub swaps: u64,
    /// Active comparator arm index (−1 when no comparator is running).
    pub arm: i64,
}

/// A [`ControlHook`] that can report its internal state after each
/// period.
///
/// The default implementation reports nothing, so every plain hook
/// (closures, [`NoShedding`]) is trivially instrumented; strategies with
/// real internals (CTRL/BASELINE/AURORA, the supervisor, the fault
/// harness) override [`InstrumentedHook::control_state`].
pub trait InstrumentedHook: ControlHook {
    /// The internal signals of the most recent `on_period` call, if any.
    fn control_state(&self) -> Option<ControlState> {
        None
    }

    /// The self-tuning state of the most recent period, if this hook
    /// adapts its own tuning (default: it does not).
    fn adapt_state(&self) -> Option<AdaptState> {
        None
    }
}

impl InstrumentedHook for NoShedding {}

impl<F> InstrumentedHook for F where F: FnMut(&PeriodSnapshot) -> Decision {}

// ---------------------------------------------------------------------------
// ControlTrace
// ---------------------------------------------------------------------------

/// Maximum number of per-shard queue lengths a [`ControlTrace`] retains.
///
/// The trace must stay `Copy` (the ring buffer never allocates), so the
/// per-shard view is a fixed-size array. Runs with more shards than this
/// record the first `MAX_TRACE_SHARDS` and the true count in
/// [`ControlTrace::shards`].
pub const MAX_TRACE_SHARDS: usize = 8;

/// One structured record per control period — the full observable state
/// of the loop: what the monitor saw, what the controller computed, what
/// the actuator was told, and what faults interfered.
///
/// `Copy` by construction so the ring buffer never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlTrace {
    /// Period index `k`.
    pub k: u64,
    /// Period-boundary time, seconds.
    pub time_s: f64,
    /// Control period length `T` as reported to the hook, seconds.
    pub period_s: f64,
    /// Tuples offered this period.
    pub offered: u64,
    /// Tuples admitted past the entry shedder.
    pub admitted: u64,
    /// Tuples dropped at entry.
    pub dropped_entry: u64,
    /// Tuples dropped from in-network queues.
    pub dropped_network: u64,
    /// Roots departed this period.
    pub completed: u64,
    /// Virtual queue length `q(k)` at the boundary.
    pub outstanding: u64,
    /// Tuples inside operator queues at the boundary.
    pub queued_tuples: u64,
    /// Expected remaining CPU load of queued tuples, µs.
    pub queued_load_us: f64,
    /// Measured mean cost per completed root, µs (`NaN` = no sample).
    pub measured_cost_us: f64,
    /// Mean true delay of departures this period, ms (`NaN` = none).
    pub mean_delay_ms: f64,
    /// CPU work executed this period, µs.
    pub cpu_busy_us: u64,
    /// Entry drop probability `α` the actuator was commanded.
    pub alpha: f64,
    /// In-network load the actuator was commanded to shed, µs.
    pub shed_load_us: f64,
    /// Estimated delay `ŷ(k)`, seconds (`NaN` if not reported).
    pub y_hat_s: f64,
    /// Error `e(k)`, seconds (`NaN` if not reported).
    pub error_s: f64,
    /// Controller output `u(k)`, tuples/s (`NaN` if not reported).
    pub u_tps: f64,
    /// Cost estimate in force, µs (`NaN` if not reported).
    pub cost_est_us: f64,
    /// Which layer produced the actuation.
    pub mode: LoopMode,
    /// OR of the `FLAG_*` bits that fired this period.
    pub fault_flags: u16,
    /// Wall-clock time spent inside the hook this period, nanoseconds.
    pub hook_ns: u64,
    /// Re-identified per-tuple cost `ĉ`, µs (`NaN` = no adaptive layer).
    pub adapt_cost_us: f64,
    /// Gain generation of the adaptive layer (0 = initial design or no
    /// adaptive layer).
    pub adapt_generation: u64,
    /// Total bumpless parameter swaps so far (0 when not adapting).
    pub adapt_swaps: u64,
    /// Active comparator arm (−1 = no comparator).
    pub adapt_arm: i64,
    /// Number of data-plane shards behind this record (0 = a
    /// non-sharded runner).
    pub shards: u32,
    /// Queue length of each shard at the boundary (first
    /// [`MAX_TRACE_SHARDS`] shards; unused slots stay 0). Their sum is
    /// the global virtual-queue signal `q(k)` the controller consumed.
    pub shard_queues: [u64; MAX_TRACE_SHARDS],
}

impl ControlTrace {
    /// Builds a record from the snapshot the hook observed, the decision
    /// it returned, its reported internals, and the measured hook span.
    pub fn capture(
        snap: &PeriodSnapshot,
        decision: &Decision,
        state: Option<&ControlState>,
        hook_ns: u64,
    ) -> Self {
        let s = state.copied().unwrap_or_default();
        Self {
            k: snap.k,
            time_s: snap.now.as_secs_f64(),
            period_s: snap.period.as_secs_f64(),
            offered: snap.offered,
            admitted: snap.admitted,
            dropped_entry: snap.dropped_entry,
            dropped_network: snap.dropped_network,
            completed: snap.completed,
            outstanding: snap.outstanding,
            queued_tuples: snap.queued_tuples,
            queued_load_us: snap.queued_load_us,
            measured_cost_us: snap.measured_cost_us.unwrap_or(f64::NAN),
            mean_delay_ms: snap.mean_delay_ms.unwrap_or(f64::NAN),
            cpu_busy_us: snap.cpu_busy_us,
            alpha: decision.drop_prob_for_entry(0),
            shed_load_us: decision.shed_load_us,
            y_hat_s: s.y_hat_s,
            error_s: s.error_s,
            u_tps: s.u_tps,
            cost_est_us: s.cost_est_us,
            mode: s.mode,
            fault_flags: s.fault_flags,
            hook_ns,
            adapt_cost_us: f64::NAN,
            adapt_generation: 0,
            adapt_swaps: 0,
            adapt_arm: -1,
            shards: 0,
            shard_queues: [0; MAX_TRACE_SHARDS],
        }
    }

    /// Attaches the per-shard queue view of a sharded data plane: the
    /// true shard count plus the first [`MAX_TRACE_SHARDS`] per-shard
    /// queue lengths.
    pub fn with_shard_queues(mut self, queues: &[u64]) -> Self {
        self.shards = queues.len() as u32;
        for (slot, &q) in self.shard_queues.iter_mut().zip(queues.iter()) {
            *slot = q;
        }
        self
    }

    /// Attaches the self-tuning state of an adaptive hook (no-op for
    /// `None`, keeping the columns at their inert defaults).
    pub fn with_adapt(mut self, state: Option<AdaptState>) -> Self {
        if let Some(a) = state {
            self.adapt_cost_us = a.cost_est_us;
            self.adapt_generation = a.generation;
            self.adapt_swaps = a.swaps;
            self.adapt_arm = a.arm;
        }
        self
    }

    /// Whether the record carries self-tuning state (i.e. was produced
    /// by a hook whose [`InstrumentedHook::adapt_state`] returned
    /// `Some`). All four `adapt_*` columns sit at their inert defaults
    /// otherwise.
    pub fn has_adapt(&self) -> bool {
        self.adapt_cost_us.is_finite()
            || self.adapt_arm >= 0
            || self.adapt_generation > 0
            || self.adapt_swaps > 0
    }

    /// One JSON object on a single line (JSONL). `NaN` fields render as
    /// `null` so the output is strictly valid JSON.
    pub fn to_jsonl(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                // Trim trailing noise while staying round-trippable.
                let s = format!("{v:.9}");
                let s = s.trim_end_matches('0').trim_end_matches('.');
                if s.is_empty() || s == "-" {
                    "0".into()
                } else {
                    s.into()
                }
            } else {
                "null".into()
            }
        }
        let shard_queues = self.shard_queues[..(self.shards as usize).min(MAX_TRACE_SHARDS)]
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"k\":{},\"time_s\":{},\"period_s\":{},\"offered\":{},\"admitted\":{},\
             \"dropped_entry\":{},\"dropped_network\":{},\"completed\":{},\
             \"outstanding\":{},\"queued_tuples\":{},\"queued_load_us\":{},\
             \"measured_cost_us\":{},\"mean_delay_ms\":{},\"cpu_busy_us\":{},\
             \"alpha\":{},\"shed_load_us\":{},\"y_hat_s\":{},\"error_s\":{},\
             \"u_tps\":{},\"cost_est_us\":{},\"mode\":\"{}\",\"fault_flags\":{},\
             \"hook_ns\":{},\"adapt_cost_us\":{},\"adapt_generation\":{},\
             \"adapt_swaps\":{},\"adapt_arm\":{},\"shards\":{},\
             \"shard_queues\":[{}]}}",
            self.k,
            num(self.time_s),
            num(self.period_s),
            self.offered,
            self.admitted,
            self.dropped_entry,
            self.dropped_network,
            self.completed,
            self.outstanding,
            self.queued_tuples,
            num(self.queued_load_us),
            num(self.measured_cost_us),
            num(self.mean_delay_ms),
            self.cpu_busy_us,
            num(self.alpha),
            num(self.shed_load_us),
            num(self.y_hat_s),
            num(self.error_s),
            num(self.u_tps),
            num(self.cost_est_us),
            self.mode.as_str(),
            self.fault_flags,
            self.hook_ns,
            num(self.adapt_cost_us),
            self.adapt_generation,
            self.adapt_swaps,
            self.adapt_arm,
            self.shards,
            shard_queues,
        )
    }

    /// The CSV header matching [`Self::to_csv_row`]. Per-shard queues are
    /// flattened into `shard_q0..shard_q7` columns (0 when unused).
    pub fn csv_header() -> &'static str {
        "k,time_s,period_s,offered,admitted,dropped_entry,dropped_network,\
         completed,outstanding,queued_tuples,queued_load_us,measured_cost_us,\
         mean_delay_ms,cpu_busy_us,alpha,shed_load_us,y_hat_s,error_s,u_tps,\
         cost_est_us,mode,fault_flags,hook_ns,adapt_cost_us,adapt_generation,\
         adapt_swaps,adapt_arm,shards,\
         shard_q0,shard_q1,shard_q2,shard_q3,shard_q4,shard_q5,shard_q6,shard_q7"
    }

    /// One CSV row (no trailing newline).
    pub fn to_csv_row(&self) -> String {
        let q = &self.shard_queues;
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},\
             {},{},{},{},{},{},{},{},{},{},{},{}",
            self.k,
            self.time_s,
            self.period_s,
            self.offered,
            self.admitted,
            self.dropped_entry,
            self.dropped_network,
            self.completed,
            self.outstanding,
            self.queued_tuples,
            self.queued_load_us,
            self.measured_cost_us,
            self.mean_delay_ms,
            self.cpu_busy_us,
            self.alpha,
            self.shed_load_us,
            self.y_hat_s,
            self.error_s,
            self.u_tps,
            self.cost_est_us,
            self.mode.as_str(),
            self.fault_flags,
            self.hook_ns,
            self.adapt_cost_us,
            self.adapt_generation,
            self.adapt_swaps,
            self.adapt_arm,
            self.shards,
            q[0],
            q[1],
            q[2],
            q[3],
            q[4],
            q[5],
            q[6],
            q[7],
        )
    }
}

/// Serialises traces as one JSON object per line.
pub fn export_jsonl(traces: &[ControlTrace]) -> String {
    let mut out = String::with_capacity(traces.len() * 320);
    for t in traces {
        out.push_str(&t.to_jsonl());
        out.push('\n');
    }
    out
}

/// Serialises traces as CSV with a header row.
pub fn export_csv(traces: &[ControlTrace]) -> String {
    let mut out = String::with_capacity(traces.len() * 160 + 256);
    out.push_str(ControlTrace::csv_header());
    out.push('\n');
    for t in traces {
        out.push_str(&t.to_csv_row());
        out.push('\n');
    }
    out
}

/// Recovers the run's mean true delay (ms) from per-period records: the
/// completed-count-weighted mean of the per-period departure means.
/// Returns `None` when no period completed anything.
pub fn reconstructed_mean_delay_ms(traces: &[ControlTrace]) -> Option<f64> {
    let mut sum = 0.0f64;
    let mut n = 0u64;
    for t in traces {
        if t.completed > 0 && t.mean_delay_ms.is_finite() {
            sum += t.mean_delay_ms * t.completed as f64;
            n += t.completed;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A timed hot-path section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The control hook invocation (monitor → controller → actuator
    /// arithmetic).
    Hook,
    /// The engine's in-network shed operation (victim selection + queue
    /// surgery).
    Shedder,
}

impl SpanKind {
    const COUNT: usize = 2;

    fn index(self) -> usize {
        match self {
            SpanKind::Hook => 0,
            SpanKind::Shedder => 1,
        }
    }

    /// Stable lowercase name, used by the exporters.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Hook => "hook",
            SpanKind::Shedder => "shedder",
        }
    }
}

/// Aggregate wall-clock statistics for one [`SpanKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of spans recorded.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
    /// The longest single span, nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// Mean span length in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    fn add(&mut self, nanos: u64) {
        self.count += 1;
        self.total_ns += nanos;
        self.max_ns = self.max_ns.max(nanos);
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receives telemetry events. Implementations must not allocate in
/// [`EventSink::record`] — it sits on the per-period hot path.
pub trait EventSink {
    /// Records one per-period trace.
    fn record(&mut self, trace: &ControlTrace);

    /// Records one timed span (default: discarded).
    fn record_span(&mut self, kind: SpanKind, nanos: u64) {
        let _ = (kind, nanos);
    }
}

/// Discards everything (for overhead baselines).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _trace: &ControlTrace) {}
}

/// A fixed-capacity overwrite-oldest ring of `Copy` records.
///
/// The backing storage is fully allocated at construction, so pushing is
/// a slot write with no allocation — the property every hot-path log in
/// the engine needs ([`RingRecorder`] builds on it for control traces;
/// the rt runner uses it for its period-snapshot log). When full, the
/// oldest record is overwritten and [`Ring::overwritten`] incremented,
/// so a long run keeps its most recent `capacity` records.
#[derive(Debug, Clone)]
pub struct Ring<T: Copy> {
    buf: Vec<T>,
    capacity: usize,
    /// Next slot to write (wraps).
    next: usize,
    overwritten: u64,
}

impl<T: Copy> Ring<T> {
    /// Creates a ring holding up to `capacity` records (fully
    /// preallocated; `capacity` must be ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            overwritten: 0,
        }
    }

    /// Appends a record, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
            self.next = self.buf.len() % self.capacity;
        } else {
            self.buf[self.next] = item;
            self.next = (self.next + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Records retained so far (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of records lost to ring wrap-around.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The retained records in chronological order (oldest first).
    pub fn to_vec(&self) -> Vec<T> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            // `next` points at the oldest record once the ring is full.
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

/// A fixed-capacity ring buffer of [`ControlTrace`] records plus span
/// statistics.
///
/// The buffer is fully allocated at construction; recording is a slot
/// write. When full, the oldest record is overwritten and
/// [`RingRecorder::overwritten`] incremented, so a long run keeps its
/// most recent `capacity` periods.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    ring: Ring<ControlTrace>,
    spans: [SpanStats; SpanKind::COUNT],
}

impl RingRecorder {
    /// Creates a recorder holding up to `capacity` periods
    /// (fully preallocated; `capacity` must be ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "recorder capacity must be at least 1");
        Self {
            ring: Ring::with_capacity(capacity),
            spans: [SpanStats::default(); SpanKind::COUNT],
        }
    }

    /// Records recorded so far (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of records lost to ring wrap-around.
    pub fn overwritten(&self) -> u64 {
        self.ring.overwritten()
    }

    /// Span statistics for one hot-path section.
    pub fn span_stats(&self, kind: SpanKind) -> SpanStats {
        self.spans[kind.index()]
    }

    /// The retained records in chronological order (oldest first).
    pub fn to_vec(&self) -> Vec<ControlTrace> {
        self.ring.to_vec()
    }
}

impl EventSink for RingRecorder {
    fn record(&mut self, trace: &ControlTrace) {
        self.ring.push(*trace);
    }

    fn record_span(&mut self, kind: SpanKind, nanos: u64) {
        self.spans[kind.index()].add(nanos);
    }
}

/// A cloneable, thread-safe handle to a [`RingRecorder`] — the sink to
/// use when the recorder must outlive the hook (the rt runner moves its
/// hook into the controller thread) or be shared between the hook and
/// the engine (shedder spans from the simulator).
#[derive(Debug, Clone)]
pub struct SharedRecorder(Arc<Mutex<RingRecorder>>);

impl SharedRecorder {
    /// Creates a shared recorder with the given ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Arc::new(Mutex::new(RingRecorder::with_capacity(capacity))))
    }

    /// Snapshot of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<ControlTrace> {
        self.0.lock().to_vec()
    }

    /// Span statistics for one hot-path section.
    pub fn span_stats(&self, kind: SpanKind) -> SpanStats {
        self.0.lock().span_stats(kind)
    }

    /// Number of records lost to ring wrap-around.
    pub fn overwritten(&self) -> u64 {
        self.0.lock().overwritten()
    }

    /// Records recorded so far.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }
}

impl EventSink for SharedRecorder {
    fn record(&mut self, trace: &ControlTrace) {
        self.0.lock().record(trace);
    }

    fn record_span(&mut self, kind: SpanKind, nanos: u64) {
        self.0.lock().record_span(kind, nanos);
    }
}

// ---------------------------------------------------------------------------
// TracingHook
// ---------------------------------------------------------------------------

/// Wraps any [`InstrumentedHook`], recording one [`ControlTrace`] per
/// period into an [`EventSink`] and timing the hook invocation as a
/// [`SpanKind::Hook`] span.
///
/// Because the wrapper is itself an `InstrumentedHook`, it composes with
/// the rest of the stack (e.g. tracing a
/// [`FaultyHook`](crate::faults::FaultyHook) that wraps a supervisor).
pub struct TracingHook<H, S = RingRecorder> {
    inner: H,
    sink: S,
}

impl<H: InstrumentedHook> TracingHook<H, RingRecorder> {
    /// Traces `inner` into an owned ring recorder of `capacity` periods.
    pub fn new(inner: H, capacity: usize) -> Self {
        Self {
            inner,
            sink: RingRecorder::with_capacity(capacity),
        }
    }

    /// The recorder (for inspection mid-run).
    pub fn recorder(&self) -> &RingRecorder {
        &self.sink
    }

    /// Consumes the hook, returning the recorder.
    pub fn into_recorder(self) -> RingRecorder {
        self.sink
    }
}

impl<H: InstrumentedHook> TracingHook<H, SharedRecorder> {
    /// Traces `inner` into a shared recorder (cloneable handle retained
    /// by the caller).
    pub fn shared(inner: H, recorder: SharedRecorder) -> Self {
        Self {
            inner,
            sink: recorder,
        }
    }
}

impl<H, S> TracingHook<H, S> {
    /// Traces `inner` into an arbitrary [`EventSink`] — the constructor
    /// the observability plane uses to fan one trace stream out to the
    /// ring recorder, the diagnostics engine, and the flight recorder at
    /// once (see [`ObsPlane`](crate::obs::ObsPlane)).
    pub fn with_sink(inner: H, sink: S) -> Self {
        Self { inner, sink }
    }

    /// The wrapped hook.
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Consumes the wrapper, returning `(inner hook, sink)`.
    pub fn into_parts(self) -> (H, S) {
        (self.inner, self.sink)
    }
}

impl<H: InstrumentedHook, S: EventSink> ControlHook for TracingHook<H, S> {
    fn on_period(&mut self, snapshot: &PeriodSnapshot) -> Decision {
        let t0 = Instant::now();
        let decision = self.inner.on_period(snapshot);
        let hook_ns = t0.elapsed().as_nanos() as u64;
        let state = self.inner.control_state();
        let trace = ControlTrace::capture(snapshot, &decision, state.as_ref(), hook_ns)
            .with_adapt(self.inner.adapt_state());
        self.sink.record(&trace);
        self.sink.record_span(SpanKind::Hook, hook_ns);
        decision
    }
}

impl<H: InstrumentedHook, S: EventSink> InstrumentedHook for TracingHook<H, S> {
    fn control_state(&self) -> Option<ControlState> {
        self.inner.control_state()
    }

    fn adapt_state(&self) -> Option<AdaptState> {
        self.inner.adapt_state()
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Builder for the Prometheus text exposition format (`# HELP`/`# TYPE`
/// plus one sample per metric).
///
/// ```
/// use streamshed_engine::telemetry::PromText;
/// let mut p = PromText::new("streamshed");
/// p.counter("offered_total", "Tuples offered to the engine", 1234.0);
/// p.gauge("queue_len", "Tuples currently queued", 17.0);
/// let text = p.finish();
/// assert!(text.contains("# TYPE streamshed_offered_total counter"));
/// assert!(text.contains("streamshed_queue_len 17"));
/// ```
#[derive(Debug, Clone)]
pub struct PromText {
    prefix: String,
    out: String,
}

/// Escapes a `# HELP` text per the Prometheus exposition format:
/// backslash and newline become `\\` and `\n`.
fn escape_help(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escapes a label value per the Prometheus exposition format:
/// backslash, newline, and double quote become `\\`, `\n`, and `\"`.
fn escape_label_value(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
}

impl PromText {
    /// Creates a builder; every metric name is prefixed `"<prefix>_"`.
    pub fn new(prefix: &str) -> Self {
        Self {
            prefix: prefix.to_string(),
            out: String::new(),
        }
    }

    fn write_value(&mut self, series: &str, value: f64) {
        use std::fmt::Write as _;
        if value.fract() == 0.0 && value.abs() < 9e15 {
            let _ = writeln!(self.out, "{series} {}", value as i64);
        } else {
            let _ = writeln!(self.out, "{series} {value}");
        }
    }

    fn preamble(&mut self, name: &str, help: &str, kind: &str) -> String {
        use std::fmt::Write as _;
        let full = format!("{}_{name}", self.prefix);
        let _ = write!(self.out, "# HELP {full} ");
        escape_help(&mut self.out, help);
        self.out.push('\n');
        let _ = writeln!(self.out, "# TYPE {full} {kind}");
        full
    }

    fn sample(&mut self, name: &str, help: &str, kind: &str, value: f64) {
        let full = self.preamble(name, help, kind);
        self.write_value(&full, value);
    }

    fn sample_vec(&mut self, name: &str, help: &str, kind: &str, label: &str, values: &[f64]) {
        let full = self.preamble(name, help, kind);
        for (i, &value) in values.iter().enumerate() {
            let series = format!("{full}{{{label}=\"{i}\"}}");
            self.write_value(&series, value);
        }
    }

    fn sample_labeled(
        &mut self,
        name: &str,
        help: &str,
        kind: &str,
        label: &str,
        label_value: &str,
        value: f64,
    ) {
        let full = self.preamble(name, help, kind);
        let mut series = format!("{full}{{{label}=\"");
        escape_label_value(&mut series, label_value);
        series.push_str("\"}");
        self.write_value(&series, value);
    }

    /// Appends a monotone counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.sample(name, help, "counter", value);
        self
    }

    /// Appends a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.sample(name, help, "gauge", value);
        self
    }

    /// Appends a labelled counter family: one `# HELP`/`# TYPE` preamble
    /// and one `name{label="i"}` sample per element of `values` (the
    /// label value is the element's index — e.g. the shard id).
    pub fn counter_vec(&mut self, name: &str, help: &str, label: &str, values: &[f64]) -> &mut Self {
        self.sample_vec(name, help, "counter", label, values);
        self
    }

    /// Appends a labelled gauge family, one sample per element of
    /// `values`, labelled by index.
    pub fn gauge_vec(&mut self, name: &str, help: &str, label: &str, values: &[f64]) -> &mut Self {
        self.sample_vec(name, help, "gauge", label, values);
        self
    }

    /// Appends one counter sample carrying an arbitrary string label
    /// value (escaped per the exposition format).
    pub fn counter_labeled(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        label_value: &str,
        value: f64,
    ) -> &mut Self {
        self.sample_labeled(name, help, "counter", label, label_value, value);
        self
    }

    /// Appends one gauge sample carrying an arbitrary string label value
    /// (escaped per the exposition format) — e.g.
    /// `streamshed_diag_state_info{state="oscillating"} 1`.
    pub fn gauge_labeled(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        label_value: &str,
        value: f64,
    ) -> &mut Self {
        self.sample_labeled(name, help, "gauge", label, label_value, value);
        self
    }

    /// Appends a `# HELP`/`# TYPE` preamble for a multi-sample family
    /// (`kind` is `"counter"`, `"gauge"`, or `"histogram"`) and returns
    /// the full prefixed name. Follow with
    /// [`sample_with_labels`](Self::sample_with_labels) — one preamble,
    /// many samples, per the exposition format.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) -> String {
        self.preamble(name, help, kind)
    }

    /// Appends one sample line `full{k1="v1",k2="v2"} value` with every
    /// label value escaped per the exposition format. `full` is a name
    /// returned by [`family`](Self::family), optionally suffixed
    /// (`_bucket`, `_sum`, `_count` for histograms).
    pub fn sample_with_labels(
        &mut self,
        full: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) -> &mut Self {
        let mut series = String::with_capacity(full.len() + 24 * labels.len());
        series.push_str(full);
        if !labels.is_empty() {
            series.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    series.push(',');
                }
                series.push_str(k);
                series.push_str("=\"");
                escape_label_value(&mut series, v);
                series.push('"');
            }
            series.push('}');
        }
        self.write_value(&series, value);
        self
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Escapes `s` as a quoted JSON string (quotes included): `"`, `\`,
/// and control characters are escaped per RFC 8259.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::Decision;
    use crate::time::{secs, SimTime};

    fn snap(k: u64) -> PeriodSnapshot {
        PeriodSnapshot {
            k,
            now: SimTime::ZERO + secs(k + 1),
            period: secs(1),
            offered: 300,
            admitted: 250,
            dropped_entry: 50,
            dropped_network: 0,
            completed: 190,
            outstanding: 60,
            queued_tuples: 60,
            queued_load_us: 300_000.0,
            measured_cost_us: Some(5000.0),
            mean_delay_ms: Some(1200.0 + k as f64),
            cpu_busy_us: 950_000,
        }
    }

    #[test]
    fn tracing_hook_records_every_period() {
        let mut hook = TracingHook::new(|_s: &PeriodSnapshot| Decision::entry(0.25), 64);
        for k in 0..10 {
            let d = hook.on_period(&snap(k));
            assert_eq!(d.entry_drop_prob, 0.25);
        }
        let rec = hook.into_recorder();
        assert_eq!(rec.len(), 10);
        let traces = rec.to_vec();
        assert_eq!(traces[3].k, 3);
        assert_eq!(traces[3].alpha, 0.25);
        assert_eq!(traces[3].offered, 300);
        // Plain closures report no internals: NaN, Direct, no flags.
        assert!(traces[3].y_hat_s.is_nan());
        assert_eq!(traces[3].mode, LoopMode::Direct);
        assert_eq!(traces[3].fault_flags, 0);
        assert_eq!(rec.span_stats(SpanKind::Hook).count, 10);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let mut rec = RingRecorder::with_capacity(4);
        let d = Decision::NONE;
        for k in 0..10 {
            rec.record(&ControlTrace::capture(&snap(k), &d, None, 7));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.overwritten(), 6);
        let ks: Vec<u64> = rec.to_vec().iter().map(|t| t.k).collect();
        assert_eq!(ks, vec![6, 7, 8, 9], "chronological, newest retained");
    }

    #[test]
    fn jsonl_is_valid_and_null_for_nan() {
        let mut s = snap(2);
        s.measured_cost_us = None;
        s.mean_delay_ms = None;
        let t = ControlTrace::capture(&s, &Decision::entry(0.5), None, 42);
        let line = t.to_jsonl();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"measured_cost_us\":null"));
        assert!(line.contains("\"alpha\":0.5"));
        assert!(line.contains("\"mode\":\"direct\""));
        assert!(!line.contains("NaN"));
        // Structural sanity: one object, balanced quotes, expected key.
        assert_eq!(line.matches('{').count(), 1);
        assert_eq!(line.matches('}').count(), 1);
        assert_eq!(line.matches('"').count() % 2, 0);
        assert!(line.contains("\"k\":2,"));
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let t = ControlTrace::capture(&snap(0), &Decision::NONE, None, 1);
        let cols = ControlTrace::csv_header().split(',').count();
        assert_eq!(t.to_csv_row().split(',').count(), cols);
        let exported = export_csv(&[t]);
        assert_eq!(exported.lines().count(), 2);
    }

    #[test]
    fn mean_delay_reconstruction_weights_by_completed() {
        let d = Decision::NONE;
        let mut a = snap(0);
        a.completed = 100;
        a.mean_delay_ms = Some(1000.0);
        let mut b = snap(1);
        b.completed = 300;
        b.mean_delay_ms = Some(2000.0);
        let mut c = snap(2);
        c.completed = 0;
        c.mean_delay_ms = None;
        let traces = vec![
            ControlTrace::capture(&a, &d, None, 0),
            ControlTrace::capture(&b, &d, None, 0),
            ControlTrace::capture(&c, &d, None, 0),
        ];
        let m = reconstructed_mean_delay_ms(&traces).unwrap();
        assert!((m - 1750.0).abs() < 1e-9, "weighted mean {m}");
        assert_eq!(reconstructed_mean_delay_ms(&[]), None);
    }

    #[test]
    fn shared_recorder_collects_across_clones() {
        let rec = SharedRecorder::with_capacity(16);
        let mut hook = TracingHook::shared(NoShedding, rec.clone());
        for k in 0..5 {
            let _ = hook.on_period(&snap(k));
        }
        assert_eq!(rec.len(), 5);
        assert_eq!(rec.span_stats(SpanKind::Hook).count, 5);
        assert!(!rec.is_empty());
    }

    #[test]
    fn control_state_flows_through() {
        struct Fixed;
        impl ControlHook for Fixed {
            fn on_period(&mut self, _s: &PeriodSnapshot) -> Decision {
                Decision::entry(0.1)
            }
        }
        impl InstrumentedHook for Fixed {
            fn control_state(&self) -> Option<ControlState> {
                Some(ControlState {
                    y_hat_s: 2.5,
                    error_s: -0.5,
                    u_tps: -42.0,
                    cost_est_us: 5105.0,
                    mode: LoopMode::Fallback,
                    fault_flags: FLAG_STALE_QUEUE,
                })
            }
        }
        let mut hook = TracingHook::new(Fixed, 8);
        let _ = hook.on_period(&snap(0));
        let t = hook.recorder().to_vec()[0];
        assert_eq!(t.y_hat_s, 2.5);
        assert_eq!(t.mode, LoopMode::Fallback);
        assert_eq!(t.fault_flags, FLAG_STALE_QUEUE);
        assert_eq!(
            fault_flag_names(t.fault_flags).collect::<Vec<_>>(),
            vec!["stale_queue"]
        );
    }

    #[test]
    fn span_stats_track_mean_and_max() {
        let mut s = SpanStats::default();
        s.add(10);
        s.add(30);
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40);
        assert_eq!(s.max_ns, 30);
        assert!((s.mean_ns() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn prom_text_format() {
        let mut p = PromText::new("streamshed");
        p.counter("offered_total", "Tuples offered", 10.0)
            .gauge("alpha", "Drop probability", 0.25);
        let text = p.finish();
        assert!(text.contains("# HELP streamshed_offered_total Tuples offered"));
        assert!(text.contains("# TYPE streamshed_offered_total counter"));
        assert!(text.contains("streamshed_offered_total 10"));
        assert!(text.contains("# TYPE streamshed_alpha gauge"));
        assert!(text.contains("streamshed_alpha 0.25"));
    }

    #[test]
    fn prom_text_vec_emits_one_preamble_many_samples() {
        let mut p = PromText::new("streamshed");
        p.counter_vec("shard_completed_total", "Per-shard completions", "shard", &[5.0, 7.0])
            .gauge_vec("shard_queue_len", "Per-shard queue length", "shard", &[2.0, 0.0, 9.0]);
        let text = p.finish();
        assert_eq!(
            text.matches("# TYPE streamshed_shard_completed_total counter").count(),
            1
        );
        assert!(text.contains("streamshed_shard_completed_total{shard=\"0\"} 5"));
        assert!(text.contains("streamshed_shard_completed_total{shard=\"1\"} 7"));
        assert!(text.contains("streamshed_shard_queue_len{shard=\"2\"} 9"));
        assert_eq!(text.matches("# HELP streamshed_shard_queue_len").count(), 1);
    }

    #[test]
    fn shard_queues_flow_through_exporters() {
        let t = ControlTrace::capture(&snap(1), &Decision::NONE, None, 3)
            .with_shard_queues(&[4, 0, 11]);
        assert_eq!(t.shards, 3);
        let line = t.to_jsonl();
        assert!(line.contains("\"shards\":3"), "{line}");
        assert!(line.contains("\"shard_queues\":[4,0,11]"), "{line}");
        let row = t.to_csv_row();
        assert_eq!(row.split(',').count(), ControlTrace::csv_header().split(',').count());
        assert!(row.ends_with(",3,4,0,11,0,0,0,0,0"), "{row}");

        // Non-sharded runs keep the fields inert.
        let plain = ControlTrace::capture(&snap(1), &Decision::NONE, None, 3);
        assert_eq!(plain.shards, 0);
        assert!(plain.to_jsonl().contains("\"shard_queues\":[]"));

        // More shards than the trace retains: count is truthful, the
        // array keeps the first MAX_TRACE_SHARDS.
        let wide = ControlTrace::capture(&snap(1), &Decision::NONE, None, 3)
            .with_shard_queues(&[1; MAX_TRACE_SHARDS + 4]);
        assert_eq!(wide.shards as usize, MAX_TRACE_SHARDS + 4);
        assert_eq!(wide.shard_queues, [1; MAX_TRACE_SHARDS]);
    }

    #[test]
    fn adapt_state_flows_through_exporters() {
        struct Adapting;
        impl ControlHook for Adapting {
            fn on_period(&mut self, _s: &PeriodSnapshot) -> Decision {
                Decision::entry(0.1)
            }
        }
        impl InstrumentedHook for Adapting {
            fn adapt_state(&self) -> Option<AdaptState> {
                Some(AdaptState {
                    cost_est_us: 10_210.5,
                    generation: 2,
                    swaps: 3,
                    arm: 1,
                })
            }
        }
        let mut hook = TracingHook::new(Adapting, 8);
        let _ = hook.on_period(&snap(0));
        let t = hook.recorder().to_vec()[0];
        assert_eq!(t.adapt_cost_us, 10_210.5);
        assert_eq!(t.adapt_generation, 2);
        assert_eq!(t.adapt_swaps, 3);
        assert_eq!(t.adapt_arm, 1);
        let line = t.to_jsonl();
        assert!(line.contains("\"adapt_cost_us\":10210.5"), "{line}");
        assert!(line.contains("\"adapt_generation\":2"), "{line}");
        assert!(line.contains("\"adapt_swaps\":3"), "{line}");
        assert!(line.contains("\"adapt_arm\":1"), "{line}");

        // Non-adaptive hooks keep the columns inert: null cost, arm −1.
        let plain = ControlTrace::capture(&snap(0), &Decision::NONE, None, 1);
        assert!(plain.adapt_cost_us.is_nan());
        assert_eq!(plain.adapt_arm, -1);
        assert!(plain.to_jsonl().contains("\"adapt_cost_us\":null"));
        assert!(plain.to_jsonl().contains("\"adapt_arm\":-1"));
    }

    #[test]
    fn fault_flag_names_cover_all_bits() {
        let all = FLAG_SENSOR_DROPOUT
            | FLAG_STALE_QUEUE
            | FLAG_COST_NAN
            | FLAG_COST_SPIKE
            | FLAG_ACTUATOR_IGNORE
            | FLAG_ACTUATOR_PARTIAL
            | FLAG_PERIOD_JITTER;
        assert_eq!(fault_flag_names(all).len(), 7);
        assert_eq!(fault_flag_names(all).count(), 7);
        assert_eq!(fault_flag_names(0).len(), 0);
        assert_eq!(fault_flag_names(0).next(), None);
        // Undefined high bits never leak into the iteration.
        assert_eq!(fault_flag_names(0x8000).len(), 0);
    }

    #[test]
    fn fault_flags_round_trip_bit_to_name_to_bit() {
        for &(bit, name) in FAULT_FLAGS.iter() {
            let names: Vec<_> = fault_flag_names(bit).collect();
            assert_eq!(names, vec![name], "bit {bit:#06x}");
            assert_eq!(fault_flag_bit(name), Some(bit), "name {name}");
        }
        assert_eq!(fault_flag_bit("no_such_flag"), None);
        // Joined rendering matches the table order for a multi-bit set.
        let joined = fault_flag_names(FLAG_STALE_QUEUE | FLAG_PERIOD_JITTER).join("|");
        assert_eq!(joined, "stale_queue|period_jitter");
        assert_eq!(fault_flag_names(0).join("|"), "");
    }

    #[test]
    fn prom_text_escapes_hostile_labels_and_help() {
        let mut p = PromText::new("streamshed");
        p.gauge_labeled(
            "diag_state_info",
            "Current state.\nSecond \\ line",
            "state",
            "evil\"name\\with\nnewline",
            1.0,
        );
        let text = p.finish();
        // HELP: backslash and newline escaped (quotes stay literal).
        assert!(
            text.contains("# HELP streamshed_diag_state_info Current state.\\nSecond \\\\ line"),
            "{text}"
        );
        // Label value: backslash, double quote, and newline all escaped.
        assert!(
            text.contains(
                "streamshed_diag_state_info{state=\"evil\\\"name\\\\with\\nnewline\"} 1"
            ),
            "{text}"
        );
        // The exposition text stays line-structured: exactly HELP, TYPE,
        // and one sample line.
        assert_eq!(text.lines().count(), 3, "{text}");
    }

    #[test]
    fn prom_text_labeled_counter_sample() {
        let mut p = PromText::new("s");
        p.counter_labeled("anomalies_total", "Anomaly entries", "state", "saturated", 3.0);
        let text = p.finish();
        assert!(text.contains("# TYPE s_anomalies_total counter"));
        assert!(text.contains("s_anomalies_total{state=\"saturated\"} 3"));
    }
}
