//! Best-effort CPU affinity for shard workers.
//!
//! Behind [`ShardConfig::pin_cores`](crate::shard::ShardConfig::pin_cores)
//! each shard worker pins itself to core `shard_index % cores`, which
//! keeps a shard's ring, stats line, and working set resident in one
//! core's cache on multicore hosts. Pinning is strictly best effort: a
//! failed or unsupported pin is ignored (the worker just runs unpinned),
//! so the engine behaves identically on constrained hosts — only the
//! cache locality differs.
//!
//! The crate forbids unsafe code by default; this module is the single
//! audited exception, a direct `sched_setaffinity(2)` wrapper (the
//! vendored dependency set carries no libc binding).
#![allow(unsafe_code)]

/// Pins the calling thread to `core` (Linux only). Returns `true` on
/// success, `false` when the pin failed or the platform is unsupported.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(core: usize) -> bool {
    // A fixed 1024-bit mask matches glibc's cpu_set_t.
    const WORDS: usize = 16;
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut set = [0u64; WORDS];
    let bit = core % (WORDS * 64);
    set[bit / 64] |= 1u64 << (bit % 64);
    // SAFETY: `set` is a valid, live buffer of `WORDS * 8` bytes; pid 0
    // means "the calling thread"; sched_setaffinity only reads the mask.
    (unsafe { sched_setaffinity(0, WORDS * 8, set.as_ptr()) }) == 0
}

/// Pinning is unsupported off Linux; reports failure without side
/// effects.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

/// Number of logical cores visible to the process (≥ 1).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cores_is_positive() {
        assert!(host_cores() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_to_core_zero_succeeds_on_linux() {
        // Core 0 always exists; the pin applies to this test thread only.
        assert!(pin_current_thread(0));
    }
}
