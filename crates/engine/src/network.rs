//! Query network description: a DAG of operators, as in Fig. 2 of the
//! paper ("multiple queries form a network of operators so that they can
//! share computations").

use crate::operator::OperatorLogic;
use crate::time::SimDuration;
use std::fmt;

/// Identifier of a node (operator instance) in a query network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index into the network's node list.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a `NodeId` from a raw index (for analyses that iterate
    /// `0..network.len()`); out-of-range ids panic on use.
    pub fn from_index(index: usize) -> Self {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// An edge target: a downstream node and the input port to deliver to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeTarget {
    /// Destination node.
    pub node: NodeId,
    /// Destination input port.
    pub port: usize,
}

/// A node of the query network.
pub struct Node {
    /// Human-readable name.
    pub name: String,
    /// CPU cost per invocation (per input tuple processed).
    pub cost: SimDuration,
    /// The operator behaviour.
    pub logic: Box<dyn OperatorLogic>,
    /// Output edges, grouped by branch: `outputs[branch]` is the broadcast
    /// set for that branch. Unary operators emit on branch 0 via
    /// `OutputBuffer::emit` (broadcast to *all* branches).
    pub outputs: Vec<Vec<EdgeTarget>>,
    /// Whether this node is an entry point of the network.
    pub is_entry: bool,
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("name", &self.name)
            .field("cost", &self.cost)
            .field("kind", &self.logic.kind())
            .field("outputs", &self.outputs)
            .field("is_entry", &self.is_entry)
            .finish()
    }
}

/// Errors from [`NetworkBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// The graph contains a cycle (query networks must be DAGs).
    Cyclic,
    /// No entry points were declared.
    NoEntry,
    /// An edge targets a port beyond the operator's port count.
    BadPort {
        /// Offending destination node.
        node: usize,
        /// Offending port index.
        port: usize,
        /// Number of ports the operator actually has.
        ports: usize,
    },
    /// A node is unreachable from every entry point.
    Unreachable(usize),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Cyclic => write!(f, "query network contains a cycle"),
            NetworkError::NoEntry => write!(f, "no entry points declared"),
            NetworkError::BadPort { node, port, ports } => write!(
                f,
                "edge targets port {port} of op{node}, which has {ports} port(s)"
            ),
            NetworkError::Unreachable(n) => {
                write!(f, "op{n} is unreachable from every entry point")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A validated query network.
pub struct QueryNetwork {
    nodes: Vec<Node>,
    entries: Vec<NodeId>,
    topo_order: Vec<NodeId>,
    downstream_load_us: Vec<f64>,
    output_yield: Vec<f64>,
}

impl QueryNetwork {
    /// Nodes of the network.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to nodes (the simulator owns operator state).
    pub(crate) fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// Entry-point nodes.
    pub fn entries(&self) -> &[NodeId] {
        &self.entries
    }

    /// Nodes in a topological order (every edge goes forward).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo_order
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network has no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Expected remaining CPU (µs) a tuple sitting in front of `node`
    /// will consume before leaving the network, accounting for operator
    /// selectivities: `L(n) = cost(n) + sel(n) · Σ_children L(child)`.
    ///
    /// This is the per-tuple "load" used by load-based shedding (§4.5.2).
    pub fn downstream_load_us(&self, node: NodeId) -> f64 {
        self.downstream_load_us[node.0]
    }

    /// Expected number of *query outputs* a tuple sitting in front of
    /// `node` will eventually produce:
    /// `Y(n) = sel(n) · Σ_children Y(child)`, with `Y = sel(n)` at sinks.
    ///
    /// Tuples deeper in the network have survived more filters, so they
    /// are more valuable — the utility side of Aurora's LSRM ranking
    /// (load saved per output lost).
    pub fn output_yield(&self, node: NodeId) -> f64 {
        self.output_yield[node.0]
    }

    /// Expected total CPU (µs) per tuple admitted at an entry point —
    /// the model's per-tuple cost `c`, averaged over entries.
    pub fn expected_cost_per_tuple_us(&self) -> f64 {
        let entries = &self.entries;
        assert!(!entries.is_empty());
        entries
            .iter()
            .map(|&e| self.downstream_load_us[e.0])
            .sum::<f64>()
            / entries.len() as f64
    }
}

impl fmt::Debug for QueryNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryNetwork")
            .field("nodes", &self.nodes.len())
            .field("entries", &self.entries)
            .finish()
    }
}

/// Incrementally constructs a [`QueryNetwork`].
#[derive(Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operator node with the given per-invocation CPU cost.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        cost: SimDuration,
        logic: impl OperatorLogic + 'static,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            cost,
            logic: Box::new(logic),
            outputs: vec![Vec::new()],
            is_entry: false,
        });
        id
    }

    /// Marks a node as an entry point (stream data is admitted here).
    pub fn entry(&mut self, node: NodeId) -> &mut Self {
        self.nodes[node.0].is_entry = true;
        self
    }

    /// Connects `from` (branch 0) to input port 0 of `to`.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.connect_port(from, 0, to, 0)
    }

    /// Connects a specific output branch of `from` to a specific input
    /// port of `to`.
    pub fn connect_port(
        &mut self,
        from: NodeId,
        branch: usize,
        to: NodeId,
        port: usize,
    ) -> &mut Self {
        let outputs = &mut self.nodes[from.0].outputs;
        while outputs.len() <= branch {
            outputs.push(Vec::new());
        }
        outputs[branch].push(EdgeTarget { node: to, port });
        self
    }

    /// Validates and finalises the network.
    pub fn build(self) -> Result<QueryNetwork, NetworkError> {
        let nodes = self.nodes;
        let n = nodes.len();

        // Port validation.
        for node in &nodes {
            for branch in &node.outputs {
                for edge in branch {
                    let ports = nodes[edge.node.0].logic.ports();
                    if edge.port >= ports {
                        return Err(NetworkError::BadPort {
                            node: edge.node.0,
                            port: edge.port,
                            ports,
                        });
                    }
                }
            }
        }

        let entries: Vec<NodeId> = (0..n)
            .filter(|&i| nodes[i].is_entry)
            .map(NodeId)
            .collect();
        if entries.is_empty() {
            return Err(NetworkError::NoEntry);
        }

        // Kahn's algorithm for topological order.
        let mut indegree = vec![0usize; n];
        for node in &nodes {
            for branch in &node.outputs {
                for edge in branch {
                    indegree[edge.node.0] += 1;
                }
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = stack.pop() {
            topo.push(NodeId(i));
            for branch in &nodes[i].outputs {
                for edge in branch {
                    indegree[edge.node.0] -= 1;
                    if indegree[edge.node.0] == 0 {
                        stack.push(edge.node.0);
                    }
                }
            }
        }
        if topo.len() != n {
            return Err(NetworkError::Cyclic);
        }

        // Reachability from entries.
        let mut reachable = vec![false; n];
        let mut frontier: Vec<usize> = entries.iter().map(|e| e.0).collect();
        for &e in &frontier {
            reachable[e] = true;
        }
        while let Some(i) = frontier.pop() {
            for branch in &nodes[i].outputs {
                for edge in branch {
                    if !reachable[edge.node.0] {
                        reachable[edge.node.0] = true;
                        frontier.push(edge.node.0);
                    }
                }
            }
        }
        if let Some(bad) = (0..n).find(|&i| !reachable[i]) {
            return Err(NetworkError::Unreachable(bad));
        }

        // Downstream load: process in reverse topological order.
        // For a node with B branches, a Split routes each tuple to one
        // branch; other operators broadcast to all branches. We estimate
        // the split case with the declared branch-0 fraction when
        // available, otherwise uniformly.
        let mut load = vec![0.0f64; n];
        for &NodeId(i) in topo.iter().rev() {
            let node = &nodes[i];
            let sel = node.logic.expected_selectivity();
            let branches = &node.outputs;
            let child_sum = if node.logic.kind() == "split" && branches.len() > 1 {
                // Expected over the routing distribution (uniform here; the
                // builder does not expose Split internals — uniform is the
                // neutral prior and only affects shed-plan estimates).
                let per_branch: f64 = branches
                    .iter()
                    .map(|b| b.iter().map(|e| load[e.node.0]).sum::<f64>())
                    .sum();
                per_branch / branches.len() as f64
            } else {
                branches
                    .iter()
                    .flat_map(|b| b.iter())
                    .map(|e| load[e.node.0])
                    .sum()
            };
            load[i] = node.cost.as_micros() as f64 + sel * child_sum;
        }

        // Output yields: same reverse-topological sweep, but counting
        // expected query results instead of CPU.
        let mut yields = vec![0.0f64; n];
        for &NodeId(i) in topo.iter().rev() {
            let node = &nodes[i];
            let sel = node.logic.expected_selectivity();
            let branches = &node.outputs;
            let has_children = branches.iter().any(|b| !b.is_empty());
            yields[i] = if !has_children {
                sel
            } else if node.logic.kind() == "split" && branches.len() > 1 {
                let total: f64 = branches
                    .iter()
                    .map(|b| b.iter().map(|e| yields[e.node.0]).sum::<f64>())
                    .sum();
                sel * total / branches.len() as f64
            } else {
                sel * branches
                    .iter()
                    .flat_map(|b| b.iter())
                    .map(|e| yields[e.node.0])
                    .sum::<f64>()
            };
        }

        Ok(QueryNetwork {
            nodes,
            entries,
            topo_order: topo,
            downstream_load_us: load,
            output_yield: yields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Filter, Map, Union};
    use crate::time::millis;

    #[test]
    fn linear_chain_builds() {
        let mut b = NetworkBuilder::new();
        let a = b.add("a", millis(1), Map::identity());
        let c = b.add("c", millis(2), Map::identity());
        b.connect(a, c);
        b.entry(a);
        let net = b.build().unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.entries(), &[NodeId(0)]);
        // Load at entry = 1ms + 2ms.
        assert!((net.downstream_load_us(NodeId(0)) - 3000.0).abs() < 1e-9);
        assert!((net.expected_cost_per_tuple_us() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn selectivity_discounts_downstream_load() {
        let mut b = NetworkBuilder::new();
        let f = b.add("f", millis(1), Filter::value_below(0.5));
        let m = b.add("m", millis(4), Map::identity());
        b.connect(f, m);
        b.entry(f);
        let net = b.build().unwrap();
        // 1ms + 0.5 · 4ms = 3ms
        assert!((net.downstream_load_us(NodeId(0)) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.add("a", millis(1), Map::identity());
        let c = b.add("c", millis(1), Map::identity());
        b.connect(a, c);
        b.connect(c, a);
        b.entry(a);
        assert_eq!(b.build().unwrap_err(), NetworkError::Cyclic);
    }

    #[test]
    fn missing_entry_rejected() {
        let mut b = NetworkBuilder::new();
        b.add("a", millis(1), Map::identity());
        assert_eq!(b.build().unwrap_err(), NetworkError::NoEntry);
    }

    #[test]
    fn bad_port_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.add("a", millis(1), Map::identity());
        let m = b.add("m", millis(1), Map::identity()); // unary: 1 port
        b.connect_port(a, 0, m, 1);
        b.entry(a);
        assert!(matches!(
            b.build().unwrap_err(),
            NetworkError::BadPort { port: 1, .. }
        ));
    }

    #[test]
    fn unreachable_node_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.add("a", millis(1), Map::identity());
        b.add("orphan", millis(1), Map::identity());
        b.entry(a);
        assert_eq!(b.build().unwrap_err(), NetworkError::Unreachable(1));
    }

    #[test]
    fn union_accepts_two_ports() {
        let mut b = NetworkBuilder::new();
        let a = b.add("a", millis(1), Map::identity());
        let c = b.add("c", millis(1), Map::identity());
        let u = b.add("u", millis(1), Union);
        b.connect_port(a, 0, u, 0);
        b.connect_port(c, 0, u, 1);
        b.entry(a);
        b.entry(c);
        let net = b.build().unwrap();
        assert_eq!(net.entries().len(), 2);
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = NetworkBuilder::new();
        let a = b.add("a", millis(1), Map::identity());
        let c = b.add("c", millis(1), Map::identity());
        let d = b.add("d", millis(1), Map::identity());
        b.connect(a, c);
        b.connect(c, d);
        b.entry(a);
        let net = b.build().unwrap();
        let pos: Vec<usize> = (0..3)
            .map(|i| {
                net.topo_order()
                    .iter()
                    .position(|&n| n.0 == i)
                    .unwrap()
            })
            .collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2]);
    }
}
