//! Online controller-health diagnostics.
//!
//! The paper's pole placement at `(z − 0.7)²` is a *trajectory* promise:
//! the closed loop settles in ~3 control periods with damping 1 (no
//! overshoot). PR 2 made those properties checkable offline from
//! exported traces; this module checks them **online**, one period at a
//! time, at the same [`ControlTrace`] seam — so an oscillating or
//! saturated controller is visible the period it happens, not in a
//! post-mortem.
//!
//! [`ControllerHealth::observe`] consumes each period's trace and
//! maintains:
//!
//! * **Settling-time estimator** — every excursion of the (estimated)
//!   delay beyond the error band around the target is an episode; its
//!   length in periods is a settling-time sample, tracked as
//!   last/EWMA/max against the paper's 3-period design target.
//! * **Overshoot estimator** — the peak fractional excursion
//!   `(y − y_d)/y_d` within each episode, against the paper's
//!   zero-overshoot (damping-1) target.
//! * **Oscillation detection** — the sign-flip rate of `e(k)` over a
//!   sliding window (flips gated by a minimum magnitude so settled-state
//!   noise does not count), plus actuation flapping: alternating
//!   direction reversals of `α(k)` with swing ≥ a threshold. Either
//!   signal crossing the flip threshold classifies the loop
//!   `Oscillating` — a bang-bang actuation pattern is flagged even while
//!   the delay signal itself is still slewing.
//! * **Actuator-saturation tracking** — periods with `α` pinned at 0 or
//!   1 while the delay violates its band. A pinned actuator during a
//!   violation means the controller's command is not moving the plant:
//!   either it is at its physical limit (`α = 1`) or its output is not
//!   being applied (`α` stuck at 0 under overload — e.g. an ignored
//!   actuator).
//! * **SLO burn counters** — periods (and accumulated seconds) with the
//!   delay above target, total and over a rolling burn window.
//! * **Supervisor-mode accounting** — periods spent in
//!   [`LoopMode::Hold`]/[`LoopMode::Fallback`] and mode transitions, so
//!   the supervisor's interventions surface as diagnostic events.
//!
//! A small state machine classifies each period
//! [`Healthy`](HealthState::Healthy) /
//! [`Settling`](HealthState::Settling) /
//! [`Oscillating`](HealthState::Oscillating) /
//! [`Saturated`](HealthState::Saturated) /
//! [`Diverging`](HealthState::Diverging), with precedence
//! `Diverging > Saturated > Oscillating > Settling`. Transitions are
//! recorded as [`DiagEvent`]s in a fixed ring; transitions *into* an
//! anomalous state are what the flight recorder
//! ([`flight`](crate::flight)) snapshots.
//!
//! [`SharedDiagnostics`] is the cloneable, thread-safe handle that
//! implements [`EventSink`], so the engine's tracing seam
//! ([`TracingHook`](crate::telemetry::TracingHook), the sharded
//! controller loop) feeds diagnostics with no extra plumbing.

use crate::telemetry::{ControlTrace, EventSink, LoopMode, PromText, Ring};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Classification of the control loop for one period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Delay within the error band; no oscillation or saturation.
    #[default]
    Healthy,
    /// Delay outside the band but the loop is still within its grace
    /// budget to bring it back (the paper's transient).
    Settling,
    /// The error (or the actuation) is flapping sign at a rate no
    /// damping-1 loop should show.
    Oscillating,
    /// `α` pinned at 0/1 while the delay violates its band — the
    /// commanded actuation is not moving the plant.
    Saturated,
    /// The delay has stayed outside the band beyond the grace budget:
    /// the loop is not converging.
    Diverging,
}

impl HealthState {
    /// Stable lowercase name, used by the exporters and endpoints.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Settling => "settling",
            HealthState::Oscillating => "oscillating",
            HealthState::Saturated => "saturated",
            HealthState::Diverging => "diverging",
        }
    }

    /// Stable ordinal (0 = healthy … 4 = diverging), used as the gauge
    /// value of `streamshed_diag_state`.
    pub fn ordinal(&self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Settling => 1,
            HealthState::Oscillating => 2,
            HealthState::Saturated => 3,
            HealthState::Diverging => 4,
        }
    }

    /// True for the states that should trip alerts and the flight
    /// recorder (`Oscillating`, `Saturated`, `Diverging`).
    pub fn is_anomalous(&self) -> bool {
        matches!(
            self,
            HealthState::Oscillating | HealthState::Saturated | HealthState::Diverging
        )
    }

    /// All states, in ordinal order.
    pub const ALL: [HealthState; 5] = [
        HealthState::Healthy,
        HealthState::Settling,
        HealthState::Oscillating,
        HealthState::Saturated,
        HealthState::Diverging,
    ];
}

/// One health-state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagEvent {
    /// Period index at which the transition happened.
    pub k: u64,
    /// State left.
    pub from: HealthState,
    /// State entered.
    pub to: HealthState,
}

/// Largest supported sliding window (fixed so the engine never
/// allocates per period).
pub const MAX_DIAG_WINDOW: usize = 64;

/// Tuning of the diagnostics engine. Defaults encode the paper's design
/// targets (3-period settling, zero overshoot) with bands sized for
/// wall-clock noise.
#[derive(Debug, Clone)]
pub struct DiagnosticsConfig {
    /// The delay target `y_d`, seconds.
    pub target_delay_s: f64,
    /// The design settling time, periods (the paper's `(z − 0.7)²`
    /// placement: ~3).
    pub settle_target_periods: u64,
    /// Half-width of the error band as a fraction of the target: the
    /// delay is "settled" while `y ≤ y_d · (1 + band)`. Sized generously
    /// (wall-clock delay measurements are noisy).
    pub error_band_frac: f64,
    /// Sliding-window length for oscillation detection, periods
    /// (≤ [`MAX_DIAG_WINDOW`]).
    pub window: usize,
    /// Sign flips (of `e(k)`, or actuation reversals) within the window
    /// that classify the loop `Oscillating`.
    pub osc_min_flips: u32,
    /// A sign flip of `e(k)` only counts when both samples exceed this
    /// fraction of the target in magnitude (noise gate).
    pub osc_min_error_frac: f64,
    /// An `α` move only counts as an actuation reversal when its
    /// magnitude is at least this much.
    pub alpha_swing: f64,
    /// `α ≥ 1 − eps` (or `≤ eps`) counts as pinned.
    pub alpha_pin_eps: f64,
    /// Consecutive pinned-while-violating periods that classify the
    /// loop `Saturated`.
    pub saturation_periods: u64,
    /// Consecutive out-of-band periods beyond which the loop is
    /// `Diverging` (the grace budget; ≥ the settle target).
    pub grace_periods: u64,
    /// Rolling window for the SLO burn rate, periods
    /// (≤ [`MAX_DIAG_WINDOW`]).
    pub burn_window: usize,
    /// Fast SLO burn window, periods: the multi-window burn-rate pair's
    /// short arm (≤ [`Self::burn_slow_window`]).
    pub burn_fast_window: usize,
    /// Slow SLO burn window, periods (≤ [`MAX_DIAG_WINDOW`]). Both burn
    /// rates must exceed [`Self::burn_diverge_frac`] — with this window
    /// *full* — before burn evidence alone escalates to `Diverging`.
    pub burn_slow_window: usize,
    /// Burn-rate fraction at which the fast/slow pair escalates the
    /// loop to `Diverging`.
    pub burn_diverge_frac: f64,
}

impl DiagnosticsConfig {
    /// Defaults for a delay target: 3-period settle target, 30% error
    /// band, 16-period oscillation window, 3-flip threshold, 12-period
    /// grace.
    pub fn for_target(target_delay: Duration) -> Self {
        Self {
            target_delay_s: target_delay.as_secs_f64(),
            settle_target_periods: 3,
            error_band_frac: 0.3,
            window: 16,
            osc_min_flips: 3,
            osc_min_error_frac: 0.10,
            alpha_swing: 0.25,
            alpha_pin_eps: 1e-3,
            saturation_periods: 3,
            grace_periods: 12,
            burn_window: 32,
            burn_fast_window: 5,
            burn_slow_window: 60,
            burn_diverge_frac: 0.9,
        }
    }

    fn validate(&self) {
        assert!(
            self.target_delay_s > 0.0 && self.target_delay_s.is_finite(),
            "target delay must be positive"
        );
        assert!(
            (1..=MAX_DIAG_WINDOW).contains(&self.window),
            "window must be 1..={MAX_DIAG_WINDOW}"
        );
        assert!(
            (1..=MAX_DIAG_WINDOW).contains(&self.burn_window),
            "burn window must be 1..={MAX_DIAG_WINDOW}"
        );
        assert!(
            (1..=MAX_DIAG_WINDOW).contains(&self.burn_slow_window),
            "slow burn window must be 1..={MAX_DIAG_WINDOW}"
        );
        assert!(
            (1..=self.burn_slow_window).contains(&self.burn_fast_window),
            "fast burn window must be 1..=burn_slow_window"
        );
        assert!(
            self.burn_diverge_frac > 0.0 && self.burn_diverge_frac <= 1.0,
            "burn divergence fraction must be in (0, 1]"
        );
        assert!(self.error_band_frac >= 0.0);
        assert!(self.alpha_swing > 0.0);
        assert!(self.saturation_periods >= 1);
        assert!(
            self.grace_periods >= self.settle_target_periods,
            "grace must cover the settle target"
        );
    }
}

/// A point-in-time copy of everything the diagnostics engine knows —
/// what `/health` serializes and the flight recorder embeds in its
/// bundle header.
#[derive(Debug, Clone)]
pub struct DiagnosticsSnapshot {
    /// Current classification.
    pub state: HealthState,
    /// Period index of the last observed trace (0 if none yet).
    pub k: u64,
    /// Periods observed.
    pub periods: u64,
    /// The delay target, seconds.
    pub target_delay_s: f64,
    /// Last observed (estimated, else measured) delay, seconds. `NaN`
    /// until a period carries one.
    pub y_s: f64,
    /// Last observed error `e(k)`, seconds (`NaN` if unavailable).
    pub error_s: f64,
    /// Last commanded `α`.
    pub alpha: f64,
    /// Consecutive periods with the delay outside the band.
    pub violation_streak: u64,
    /// Consecutive periods with `α` pinned while violating.
    pub pinned_streak: u64,
    /// Sign flips (error or actuation) in the current window.
    pub flips_in_window: u32,
    /// Flip rate: flips / window.
    pub flip_rate: f64,
    /// Settling-time samples seen (completed excursion episodes).
    pub settle_samples: u64,
    /// Last settling time, periods (`NaN` before any episode).
    pub settle_last_periods: f64,
    /// EWMA settling time, periods (`NaN` before any episode).
    pub settle_ewma_periods: f64,
    /// Worst settling time, periods (`NaN` before any episode).
    pub settle_max_periods: f64,
    /// The design settling target, periods.
    pub settle_target_periods: u64,
    /// Last episode's peak overshoot fraction (`NaN` before any).
    pub overshoot_last_frac: f64,
    /// EWMA overshoot fraction (`NaN` before any episode).
    pub overshoot_ewma_frac: f64,
    /// Worst overshoot fraction (`NaN` before any episode).
    pub overshoot_max_frac: f64,
    /// Periods with `α` pinned at 1, total.
    pub pinned_high_periods: u64,
    /// Periods with `α` pinned at 0 while violating, total.
    pub pinned_low_periods: u64,
    /// Periods with the delay above target (no band), total.
    pub slo_violation_periods: u64,
    /// Fraction of the burn window with the delay above target.
    pub slo_burn_rate: f64,
    /// Burn rate over the fast window (most recent
    /// `burn_fast_window` periods).
    pub slo_burn_fast: f64,
    /// Burn rate over the slow window (most recent
    /// `burn_slow_window` periods; 0.0 until any period arrives).
    pub slo_burn_slow: f64,
    /// Σ (y − y_d)⁺ · T over observed periods, seconds.
    pub slo_violation_seconds: f64,
    /// Periods spent in supervisor hold.
    pub hold_periods: u64,
    /// Periods spent in supervisor fallback.
    pub fallback_periods: u64,
    /// Supervisor/loop mode transitions observed.
    pub mode_transitions: u64,
    /// Periods with any fault flag set.
    pub faulted_periods: u64,
    /// Health-state transitions, total.
    pub transitions: u64,
    /// Entries into an anomalous state, total.
    pub anomalies: u64,
    /// Period index of the first entry into an anomalous state.
    pub first_anomaly_k: Option<u64>,
    /// Periods spent in each state, ordinal order.
    pub periods_in_state: [u64; 5],
    /// True once any observed trace carried self-tuning state (the
    /// `streamshed_adapt_*` families render only then).
    pub adapt_seen: bool,
    /// Last re-identified per-tuple cost `ĉ`, µs (`NaN` when the loop
    /// has no adaptive layer).
    pub adapt_cost_est_us: f64,
    /// Last gain generation of the adaptive layer.
    pub adapt_generation: u64,
    /// Total bumpless parameter swaps reported.
    pub adapt_swaps: u64,
    /// Active comparator arm (−1 = no comparator).
    pub adapt_arm: i64,
    /// The most recent transitions (oldest first).
    pub recent_events: Vec<DiagEvent>,
}

impl DiagnosticsSnapshot {
    /// True when the loop needs no operator attention (`Healthy` or
    /// `Settling`).
    pub fn ok(&self) -> bool {
        !self.state.is_anomalous()
    }

    /// The HTTP status `/health` maps this snapshot to: 503 while
    /// `Diverging`, 200 otherwise (per the endpoint contract, only
    /// divergence is fatal to the verdict).
    pub fn http_status(&self) -> u16 {
        if self.state == HealthState::Diverging {
            503
        } else {
            200
        }
    }

    /// Fraction of observed periods classified `Healthy` (1.0 when no
    /// period was observed yet).
    pub fn healthy_fraction(&self) -> f64 {
        if self.periods == 0 {
            1.0
        } else {
            self.periods_in_state[0] as f64 / self.periods as f64
        }
    }

    /// The snapshot as one JSON object (strictly valid: `NaN` renders
    /// as `null`).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                let s = format!("{v:.9}");
                let s = s.trim_end_matches('0').trim_end_matches('.');
                if s.is_empty() || s == "-" {
                    "0".into()
                } else {
                    s.into()
                }
            } else {
                "null".into()
            }
        }
        let events = self
            .recent_events
            .iter()
            .map(|e| {
                format!(
                    "{{\"k\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
                    e.k,
                    e.from.as_str(),
                    e.to.as_str()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let in_state = self
            .periods_in_state
            .iter()
            .zip(HealthState::ALL.iter())
            .map(|(n, s)| format!("\"{}\":{n}", s.as_str()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"state\":\"{}\",\"ok\":{},\"k\":{},\"periods\":{},\
             \"target_delay_s\":{},\"y_s\":{},\"error_s\":{},\"alpha\":{},\
             \"violation_streak\":{},\"pinned_streak\":{},\
             \"flips_in_window\":{},\"flip_rate\":{},\
             \"settle_samples\":{},\"settle_last_periods\":{},\
             \"settle_ewma_periods\":{},\"settle_max_periods\":{},\
             \"settle_target_periods\":{},\
             \"overshoot_last_frac\":{},\"overshoot_ewma_frac\":{},\
             \"overshoot_max_frac\":{},\
             \"pinned_high_periods\":{},\"pinned_low_periods\":{},\
             \"slo_violation_periods\":{},\"slo_burn_rate\":{},\
             \"slo_burn_fast\":{},\"slo_burn_slow\":{},\
             \"slo_violation_seconds\":{},\
             \"hold_periods\":{},\"fallback_periods\":{},\
             \"mode_transitions\":{},\"faulted_periods\":{},\
             \"transitions\":{},\"anomalies\":{},\"first_anomaly_k\":{},\
             \"adapt_cost_est_us\":{},\"adapt_generation\":{},\
             \"adapt_swaps\":{},\"adapt_arm\":{},\
             \"periods_in_state\":{{{}}},\"recent_events\":[{}]}}",
            self.state.as_str(),
            self.ok(),
            self.k,
            self.periods,
            num(self.target_delay_s),
            num(self.y_s),
            num(self.error_s),
            num(self.alpha),
            self.violation_streak,
            self.pinned_streak,
            self.flips_in_window,
            num(self.flip_rate),
            self.settle_samples,
            num(self.settle_last_periods),
            num(self.settle_ewma_periods),
            num(self.settle_max_periods),
            self.settle_target_periods,
            num(self.overshoot_last_frac),
            num(self.overshoot_ewma_frac),
            num(self.overshoot_max_frac),
            self.pinned_high_periods,
            self.pinned_low_periods,
            self.slo_violation_periods,
            num(self.slo_burn_rate),
            num(self.slo_burn_fast),
            num(self.slo_burn_slow),
            num(self.slo_violation_seconds),
            self.hold_periods,
            self.fallback_periods,
            self.mode_transitions,
            self.faulted_periods,
            self.transitions,
            self.anomalies,
            self.first_anomaly_k
                .map(|k| k.to_string())
                .unwrap_or_else(|| "null".into()),
            num(self.adapt_cost_est_us),
            self.adapt_generation,
            self.adapt_swaps,
            self.adapt_arm,
            in_state,
            events,
        )
    }

    /// Appends the diagnostics metric families to a Prometheus builder
    /// (the `/metrics` extension).
    pub fn render_prom(&self, p: &mut PromText) {
        p.gauge(
            "diag_state",
            "Controller health state ordinal (0 healthy, 1 settling, 2 oscillating, 3 saturated, 4 diverging)",
            self.state.ordinal() as f64,
        )
        .gauge_labeled(
            "diag_state_info",
            "Controller health state as a label (value is always 1)",
            "state",
            self.state.as_str(),
            1.0,
        )
        .counter(
            "diag_periods_total",
            "Control periods observed by the diagnostics engine",
            self.periods as f64,
        )
        .counter(
            "diag_transitions_total",
            "Health-state transitions",
            self.transitions as f64,
        )
        .counter(
            "diag_anomalies_total",
            "Entries into an anomalous state (oscillating/saturated/diverging)",
            self.anomalies as f64,
        )
        .gauge(
            "diag_violation_streak",
            "Consecutive periods with the delay outside its band",
            self.violation_streak as f64,
        )
        .gauge(
            "diag_settle_ewma_periods",
            "EWMA settling time of delay excursions, periods (paper design target: 3)",
            self.settle_ewma_periods,
        )
        .gauge(
            "diag_settle_max_periods",
            "Worst observed settling time, periods",
            self.settle_max_periods,
        )
        .gauge(
            "diag_overshoot_ewma_frac",
            "EWMA peak overshoot per excursion, fraction of target (design target: 0)",
            self.overshoot_ewma_frac,
        )
        .gauge(
            "diag_overshoot_max_frac",
            "Worst observed overshoot, fraction of target",
            self.overshoot_max_frac,
        )
        .gauge(
            "diag_flip_rate",
            "Error/actuation sign-flip rate over the sliding window",
            self.flip_rate,
        )
        .gauge(
            "diag_alpha_pinned_streak",
            "Consecutive periods with alpha pinned while violating",
            self.pinned_streak as f64,
        )
        .counter(
            "diag_alpha_pinned_high_total",
            "Periods with alpha pinned at 1",
            self.pinned_high_periods as f64,
        )
        .counter(
            "diag_alpha_pinned_low_total",
            "Periods with alpha pinned at 0 while the delay violated its band",
            self.pinned_low_periods as f64,
        )
        .counter(
            "diag_slo_violation_periods_total",
            "Periods with the delay above target",
            self.slo_violation_periods as f64,
        )
        .gauge(
            "diag_slo_burn_rate",
            "Fraction of the burn window with the delay above target",
            self.slo_burn_rate,
        )
        .gauge(
            "diag_slo_burn_fast",
            "SLO burn rate over the fast (short) window",
            self.slo_burn_fast,
        )
        .gauge(
            "diag_slo_burn_slow",
            "SLO burn rate over the slow (long) window",
            self.slo_burn_slow,
        )
        .counter(
            "diag_slo_violation_seconds_total",
            "Accumulated delay violation, target-relative seconds",
            self.slo_violation_seconds,
        )
        .counter(
            "diag_hold_periods_total",
            "Periods the supervisor spent holding the last actuation",
            self.hold_periods as f64,
        )
        .counter(
            "diag_fallback_periods_total",
            "Periods the supervisor spent in open-loop fallback",
            self.fallback_periods as f64,
        )
        .counter(
            "diag_mode_transitions_total",
            "Supervisor/loop mode transitions observed",
            self.mode_transitions as f64,
        )
        .counter(
            "diag_faulted_periods_total",
            "Periods with any fault flag set",
            self.faulted_periods as f64,
        );
        // Self-tuning families only render once an adaptive layer has
        // reported state — non-adaptive loops keep the exposition clean.
        if self.adapt_seen {
            p.gauge(
                "adapt_cost_est_us",
                "Re-identified per-tuple cost estimate in force, microseconds",
                self.adapt_cost_est_us,
            )
            .gauge(
                "adapt_gain_generation",
                "Gain generation of the self-tuning controller (0 = initial design)",
                self.adapt_generation as f64,
            )
            .counter(
                "adapt_swaps_total",
                "Bumpless controller parameter swaps performed",
                self.adapt_swaps as f64,
            )
            .gauge(
                "adapt_comparator_arm",
                "Active model-free comparator arm index (-1 = no comparator)",
                self.adapt_arm as f64,
            );
        }
    }
}

/// The online controller-health engine. Feed it one [`ControlTrace`]
/// per period via [`ControllerHealth::observe`]; read the verdict via
/// [`ControllerHealth::snapshot`]. `Clone` so a strategy can embed a
/// private scorer (the model-free comparator keeps one per probe arm).
#[derive(Debug, Clone)]
pub struct ControllerHealth {
    cfg: DiagnosticsConfig,
    state: HealthState,
    periods: u64,
    last_k: u64,
    // Last observed signals.
    last_y: f64,
    last_error: f64,
    last_alpha: f64,
    // Sliding windows (chronological via cursor arithmetic).
    err_win: [f64; MAX_DIAG_WINDOW],
    alpha_win: [f64; MAX_DIAG_WINDOW],
    win_len: usize,
    win_next: usize,
    burn_win: [bool; MAX_DIAG_WINDOW],
    burn_len: usize,
    burn_next: usize,
    // The fast/slow burn pair shares one ring sized by the slow window;
    // the fast rate reads its most recent samples.
    burn2_win: [bool; MAX_DIAG_WINDOW],
    burn2_len: usize,
    burn2_next: usize,
    // Streaks + episode tracking.
    violation_streak: u64,
    pinned_streak: u64,
    episode_peak_frac: f64,
    flips: u32,
    // Settling estimator.
    settle_samples: u64,
    settle_last: f64,
    settle_ewma: f64,
    settle_max: f64,
    // Overshoot estimator.
    overshoot_last: f64,
    overshoot_ewma: f64,
    overshoot_max: f64,
    // Saturation + SLO totals.
    pinned_high_periods: u64,
    pinned_low_periods: u64,
    slo_violation_periods: u64,
    slo_violation_seconds: f64,
    // Mode + fault accounting.
    last_mode: Option<LoopMode>,
    hold_periods: u64,
    fallback_periods: u64,
    mode_transitions: u64,
    faulted_periods: u64,
    // Self-tuning state mirrored from the traces.
    adapt_seen: bool,
    adapt_cost_us: f64,
    adapt_generation: u64,
    adapt_swaps: u64,
    adapt_arm: i64,
    // State machine bookkeeping.
    transitions: u64,
    anomalies: u64,
    first_anomaly_k: Option<u64>,
    periods_in_state: [u64; 5],
    events: Ring<DiagEvent>,
}

/// EWMA weight for the settling/overshoot estimators.
const EST_EWMA: f64 = 0.3;
/// Capacity of the transition-event ring.
const EVENT_RING: usize = 64;

impl ControllerHealth {
    /// Creates the engine (panics on an invalid configuration).
    pub fn new(cfg: DiagnosticsConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            state: HealthState::Healthy,
            periods: 0,
            last_k: 0,
            last_y: f64::NAN,
            last_error: f64::NAN,
            last_alpha: 0.0,
            err_win: [f64::NAN; MAX_DIAG_WINDOW],
            alpha_win: [0.0; MAX_DIAG_WINDOW],
            win_len: 0,
            win_next: 0,
            burn_win: [false; MAX_DIAG_WINDOW],
            burn_len: 0,
            burn_next: 0,
            burn2_win: [false; MAX_DIAG_WINDOW],
            burn2_len: 0,
            burn2_next: 0,
            violation_streak: 0,
            pinned_streak: 0,
            episode_peak_frac: 0.0,
            flips: 0,
            settle_samples: 0,
            settle_last: f64::NAN,
            settle_ewma: f64::NAN,
            settle_max: f64::NAN,
            overshoot_last: f64::NAN,
            overshoot_ewma: f64::NAN,
            overshoot_max: f64::NAN,
            pinned_high_periods: 0,
            pinned_low_periods: 0,
            slo_violation_periods: 0,
            slo_violation_seconds: 0.0,
            last_mode: None,
            hold_periods: 0,
            fallback_periods: 0,
            mode_transitions: 0,
            faulted_periods: 0,
            adapt_seen: false,
            adapt_cost_us: f64::NAN,
            adapt_generation: 0,
            adapt_swaps: 0,
            adapt_arm: -1,
            transitions: 0,
            anomalies: 0,
            first_anomaly_k: None,
            periods_in_state: [0; 5],
            events: Ring::with_capacity(EVENT_RING),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DiagnosticsConfig {
        &self.cfg
    }

    /// The current classification.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Consumes one period's trace; returns `Some((from, to))` when the
    /// classification changed.
    pub fn observe(&mut self, trace: &ControlTrace) -> Option<(HealthState, HealthState)> {
        let t = self.cfg.target_delay_s;
        let band = t * (1.0 + self.cfg.error_band_frac);

        // The delay signal: prefer the controller's own estimate ŷ(k)
        // (what the loop regulates), fall back to the measured mean
        // delay. The error likewise prefers the reported e(k).
        let y = if trace.y_hat_s.is_finite() {
            trace.y_hat_s
        } else if trace.mean_delay_ms.is_finite() {
            trace.mean_delay_ms / 1e3
        } else {
            f64::NAN
        };
        let e = if trace.error_s.is_finite() {
            trace.error_s
        } else if y.is_finite() {
            t - y
        } else {
            f64::NAN
        };
        // Out-of-band: delay above the band. (e = y_d − y, so e < −band·y_d
        // is the same condition when only the error is reported.)
        let viol = if y.is_finite() {
            y > band
        } else if e.is_finite() {
            e < t - band
        } else {
            false
        };
        let alpha = trace.alpha;

        self.periods += 1;
        self.last_k = trace.k;
        self.last_y = y;
        self.last_error = e;
        self.last_alpha = alpha;

        // --- Settling/overshoot episode tracking -----------------------
        if viol {
            self.violation_streak += 1;
            if y.is_finite() {
                self.episode_peak_frac = self.episode_peak_frac.max((y - t) / t);
            }
        } else if self.violation_streak > 0 {
            // Episode ended: its length is a settling-time sample, its
            // peak excursion an overshoot sample.
            let settle = self.violation_streak as f64;
            self.settle_last = settle;
            self.settle_max = if self.settle_max.is_finite() {
                self.settle_max.max(settle)
            } else {
                settle
            };
            self.settle_ewma = if self.settle_ewma.is_finite() {
                EST_EWMA * settle + (1.0 - EST_EWMA) * self.settle_ewma
            } else {
                settle
            };
            self.settle_samples += 1;
            let os = self.episode_peak_frac;
            self.overshoot_last = os;
            self.overshoot_max = if self.overshoot_max.is_finite() {
                self.overshoot_max.max(os)
            } else {
                os
            };
            self.overshoot_ewma = if self.overshoot_ewma.is_finite() {
                EST_EWMA * os + (1.0 - EST_EWMA) * self.overshoot_ewma
            } else {
                os
            };
            self.violation_streak = 0;
            self.episode_peak_frac = 0.0;
        }

        // --- SLO burn ---------------------------------------------------
        let above_target = y.is_finite() && y > t;
        if above_target {
            self.slo_violation_periods += 1;
            self.slo_violation_seconds += (y - t) * trace.period_s.max(0.0);
        }
        let bw = self.cfg.burn_window;
        if self.burn_len < bw {
            self.burn_len += 1;
        }
        self.burn_win[self.burn_next] = above_target;
        self.burn_next = (self.burn_next + 1) % bw;
        let sw = self.cfg.burn_slow_window;
        if self.burn2_len < sw {
            self.burn2_len += 1;
        }
        self.burn2_win[self.burn2_next] = above_target;
        self.burn2_next = (self.burn2_next + 1) % sw;

        // --- Actuator saturation ---------------------------------------
        let eps = self.cfg.alpha_pin_eps;
        let pinned_high = alpha >= 1.0 - eps;
        let pinned_low = alpha <= eps;
        if pinned_high {
            self.pinned_high_periods += 1;
        }
        if pinned_low && viol {
            self.pinned_low_periods += 1;
        }
        if (pinned_high || pinned_low) && viol {
            self.pinned_streak += 1;
        } else {
            self.pinned_streak = 0;
        }

        // --- Oscillation window ----------------------------------------
        let w = self.cfg.window;
        if self.win_len < w {
            self.err_win[self.win_next] = e;
            self.alpha_win[self.win_next] = alpha;
            self.win_len += 1;
        } else {
            self.err_win[self.win_next] = e;
            self.alpha_win[self.win_next] = alpha;
        }
        self.win_next = (self.win_next + 1) % w;
        self.flips = self.count_flips();

        // --- Mode + fault accounting -----------------------------------
        match trace.mode {
            LoopMode::Hold => self.hold_periods += 1,
            LoopMode::Fallback => self.fallback_periods += 1,
            LoopMode::Direct | LoopMode::Engaged => {}
        }
        if let Some(prev) = self.last_mode {
            if prev != trace.mode {
                self.mode_transitions += 1;
            }
        }
        self.last_mode = Some(trace.mode);
        if trace.fault_flags != 0 {
            self.faulted_periods += 1;
        }

        // --- Self-tuning state mirror ----------------------------------
        if trace.adapt_cost_us.is_finite() || trace.adapt_arm >= 0 {
            self.adapt_seen = true;
            self.adapt_cost_us = trace.adapt_cost_us;
            self.adapt_generation = trace.adapt_generation;
            self.adapt_swaps = trace.adapt_swaps;
            self.adapt_arm = trace.adapt_arm;
        }

        // --- Classification --------------------------------------------
        // Burn evidence escalates only once the slow window is full:
        // both arms of the fast/slow pair must burn at or above the
        // configured fraction, so a short spike (fast-only) or a stale
        // historical burn (slow-only) never trips it alone.
        let (burn_fast, burn_slow) = self.burn_pair();
        let burn_alarm = self.burn2_len == self.cfg.burn_slow_window
            && burn_fast >= self.cfg.burn_diverge_frac
            && burn_slow >= self.cfg.burn_diverge_frac;
        let new_state = if self.violation_streak > self.cfg.grace_periods || burn_alarm {
            HealthState::Diverging
        } else if self.pinned_streak >= self.cfg.saturation_periods {
            HealthState::Saturated
        } else if self.flips >= self.cfg.osc_min_flips {
            HealthState::Oscillating
        } else if viol {
            HealthState::Settling
        } else {
            HealthState::Healthy
        };
        self.periods_in_state[new_state.ordinal() as usize] += 1;

        if new_state != self.state {
            let from = self.state;
            self.state = new_state;
            self.transitions += 1;
            if new_state.is_anomalous() {
                self.anomalies += 1;
                if self.first_anomaly_k.is_none() {
                    self.first_anomaly_k = Some(trace.k);
                }
            }
            self.events.push(DiagEvent {
                k: trace.k,
                from,
                to: new_state,
            });
            Some((from, new_state))
        } else {
            None
        }
    }

    /// The (fast, slow) SLO burn rates: fractions of the most recent
    /// `burn_fast_window` / `burn_slow_window` periods with the delay
    /// above target (0.0 before any period).
    fn burn_pair(&self) -> (f64, f64) {
        if self.burn2_len == 0 {
            return (0.0, 0.0);
        }
        let sw = self.cfg.burn_slow_window;
        let slow_hits = self.burn2_win[..self.burn2_len].iter().filter(|&&b| b).count();
        let slow = slow_hits as f64 / self.burn2_len as f64;
        let fw = self.cfg.burn_fast_window.min(self.burn2_len);
        let mut fast_hits = 0usize;
        for back in 1..=fw {
            // Most recent sample is one slot behind the cursor.
            let idx = (self.burn2_next + sw - (back % sw)) % sw;
            if self.burn2_win[idx] {
                fast_hits += 1;
            }
        }
        (fast_hits as f64 / fw as f64, slow)
    }

    /// Counts oscillation evidence over the window: gated sign flips of
    /// `e(k)` plus direction reversals of `α(k)` with sufficient swing;
    /// the larger of the two is the loop's flip count.
    fn count_flips(&self) -> u32 {
        let w = self.cfg.window;
        let n = self.win_len;
        if n < 3 {
            return 0;
        }
        // Chronological index: oldest sample first.
        let at = |i: usize| -> usize {
            if n < w {
                i
            } else {
                (self.win_next + i) % w
            }
        };
        let gate = self.cfg.osc_min_error_frac * self.cfg.target_delay_s;
        let mut err_flips = 0u32;
        let mut prev_sig: Option<f64> = None;
        for i in 0..n {
            let e = self.err_win[at(i)];
            if !e.is_finite() || e.abs() < gate {
                continue;
            }
            if let Some(p) = prev_sig {
                if (e > 0.0) != (p > 0.0) {
                    err_flips += 1;
                }
            }
            prev_sig = Some(e);
        }
        let mut alpha_revs = 0u32;
        let mut prev_delta: Option<f64> = None;
        for i in 1..n {
            let d = self.alpha_win[at(i)] - self.alpha_win[at(i - 1)];
            if d.abs() < self.cfg.alpha_swing {
                continue;
            }
            if let Some(p) = prev_delta {
                if (d > 0.0) != (p > 0.0) {
                    alpha_revs += 1;
                }
            }
            prev_delta = Some(d);
        }
        err_flips.max(alpha_revs)
    }

    /// A point-in-time copy of the verdict and every estimator.
    pub fn snapshot(&self) -> DiagnosticsSnapshot {
        let (slo_burn_fast, slo_burn_slow) = self.burn_pair();
        DiagnosticsSnapshot {
            state: self.state,
            k: self.last_k,
            periods: self.periods,
            target_delay_s: self.cfg.target_delay_s,
            y_s: self.last_y,
            error_s: self.last_error,
            alpha: self.last_alpha,
            violation_streak: self.violation_streak,
            pinned_streak: self.pinned_streak,
            flips_in_window: self.flips,
            flip_rate: self.flips as f64 / self.cfg.window as f64,
            settle_samples: self.settle_samples,
            settle_last_periods: self.settle_last,
            settle_ewma_periods: self.settle_ewma,
            settle_max_periods: self.settle_max,
            settle_target_periods: self.cfg.settle_target_periods,
            overshoot_last_frac: self.overshoot_last,
            overshoot_ewma_frac: self.overshoot_ewma,
            overshoot_max_frac: self.overshoot_max,
            pinned_high_periods: self.pinned_high_periods,
            pinned_low_periods: self.pinned_low_periods,
            slo_violation_periods: self.slo_violation_periods,
            slo_burn_rate: if self.burn_len == 0 {
                0.0
            } else {
                self.burn_win[..self.burn_len]
                    .iter()
                    .filter(|&&b| b)
                    .count() as f64
                    / self.burn_len as f64
            },
            slo_burn_fast,
            slo_burn_slow,
            slo_violation_seconds: self.slo_violation_seconds,
            hold_periods: self.hold_periods,
            fallback_periods: self.fallback_periods,
            mode_transitions: self.mode_transitions,
            faulted_periods: self.faulted_periods,
            transitions: self.transitions,
            anomalies: self.anomalies,
            first_anomaly_k: self.first_anomaly_k,
            periods_in_state: self.periods_in_state,
            adapt_seen: self.adapt_seen,
            adapt_cost_est_us: self.adapt_cost_us,
            adapt_generation: self.adapt_generation,
            adapt_swaps: self.adapt_swaps,
            adapt_arm: self.adapt_arm,
            recent_events: self.events.to_vec(),
        }
    }
}

impl EventSink for ControllerHealth {
    fn record(&mut self, trace: &ControlTrace) {
        let _ = self.observe(trace);
    }
}

/// A cloneable, thread-safe handle to a [`ControllerHealth`] engine —
/// shared between the controller thread (writer, via [`EventSink`]) and
/// the HTTP endpoints (readers).
#[derive(Debug, Clone)]
pub struct SharedDiagnostics(Arc<Mutex<ControllerHealth>>);

impl SharedDiagnostics {
    /// Creates a shared diagnostics engine.
    pub fn new(cfg: DiagnosticsConfig) -> Self {
        Self(Arc::new(Mutex::new(ControllerHealth::new(cfg))))
    }

    /// Consumes one period's trace; returns the transition, if any.
    pub fn observe(&self, trace: &ControlTrace) -> Option<(HealthState, HealthState)> {
        self.0.lock().observe(trace)
    }

    /// The current classification.
    pub fn state(&self) -> HealthState {
        self.0.lock().state()
    }

    /// A point-in-time copy of the verdict and every estimator.
    pub fn snapshot(&self) -> DiagnosticsSnapshot {
        self.0.lock().snapshot()
    }
}

impl EventSink for SharedDiagnostics {
    fn record(&mut self, trace: &ControlTrace) {
        let _ = self.0.lock().observe(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::{Decision, PeriodSnapshot};
    use crate::time::{secs, SimTime};

    const TARGET: f64 = 2.0;

    fn cfg() -> DiagnosticsConfig {
        DiagnosticsConfig::for_target(Duration::from_secs(2))
    }

    /// A trace with a chosen estimated delay (s) and alpha.
    fn trace(k: u64, y_s: f64, alpha: f64) -> ControlTrace {
        let snap = PeriodSnapshot {
            k,
            now: SimTime::ZERO + secs(k + 1),
            period: secs(1),
            offered: 300,
            admitted: 250,
            dropped_entry: 50,
            dropped_network: 0,
            completed: 190,
            outstanding: 60,
            queued_tuples: 60,
            queued_load_us: 300_000.0,
            measured_cost_us: Some(5000.0),
            mean_delay_ms: Some(y_s * 1e3),
            cpu_busy_us: 950_000,
        };
        let mut t = ControlTrace::capture(&snap, &Decision::entry(alpha), None, 500);
        t.y_hat_s = y_s;
        t.error_s = TARGET - y_s;
        t
    }

    #[test]
    fn burn_pair_escalates_only_with_full_slow_window() {
        let mut h = ControllerHealth::new(cfg());
        // A dip below target every 12th period keeps the violation
        // streak under the grace budget, so only burn evidence can
        // reach `Diverging` — and it must wait for a full slow window.
        let y_at = |k: u64| if k % 12 == 0 { 0.5 } else { 3.0 * TARGET };
        for k in 0..40 {
            h.observe(&trace(k, y_at(k), 0.5));
        }
        assert_ne!(
            h.state(),
            HealthState::Diverging,
            "burn cannot escalate before the slow window fills"
        );
        // k = 66..=70 are all above target, so at k = 70 the fast
        // window burns at 1.0 and the slow window at 55/60.
        for k in 40..71 {
            h.observe(&trace(k, y_at(k), 0.5));
        }
        let snap = h.snapshot();
        assert!((snap.slo_burn_fast - 1.0).abs() < 1e-9, "{}", snap.slo_burn_fast);
        assert!(snap.slo_burn_slow >= 0.9, "{}", snap.slo_burn_slow);
        assert_eq!(h.state(), HealthState::Diverging);
        assert!(snap.to_json().contains("\"slo_burn_fast\":1"));
    }

    #[test]
    fn nominal_run_stays_healthy() {
        let mut h = ControllerHealth::new(cfg());
        for k in 0..40 {
            h.observe(&trace(k, TARGET * (1.0 + 0.05 * ((k % 3) as f64 - 1.0)), 0.35));
        }
        assert_eq!(h.state(), HealthState::Healthy);
        let s = h.snapshot();
        assert_eq!(s.anomalies, 0);
        assert!(s.healthy_fraction() > 0.9, "{}", s.healthy_fraction());
        assert_eq!(s.http_status(), 200);
    }

    #[test]
    fn excursion_settles_and_records_settling_time() {
        let mut h = ControllerHealth::new(cfg());
        // Settled, then a 3-period excursion peaking at 2× target, then
        // settled again — exactly the paper's design trajectory.
        for k in 0..5 {
            h.observe(&trace(k, TARGET, 0.3));
        }
        assert_eq!(h.state(), HealthState::Healthy);
        for (i, y) in [4.0, 3.2, 2.8].iter().enumerate() {
            h.observe(&trace(5 + i as u64, *y, 0.5));
            assert_eq!(h.state(), HealthState::Settling, "period {i}");
        }
        h.observe(&trace(8, TARGET, 0.4));
        assert_eq!(h.state(), HealthState::Healthy);
        let s = h.snapshot();
        assert_eq!(s.settle_samples, 1);
        assert_eq!(s.settle_last_periods, 3.0);
        assert!((s.overshoot_last_frac - 1.0).abs() < 1e-9, "{}", s.overshoot_last_frac);
        assert!(s.slo_violation_periods >= 3);
        assert!(s.slo_violation_seconds > 0.0);
        assert_eq!(s.transitions, 2, "healthy→settling→healthy");
    }

    #[test]
    fn persistent_violation_diverges_after_grace() {
        let mut h = ControllerHealth::new(cfg());
        let mut first_div = None;
        for k in 0..20 {
            // Delay stuck at 3× target with alpha mid-range (not pinned,
            // not flapping) — nothing explains the error but divergence.
            h.observe(&trace(k, 3.0 * TARGET, 0.5));
            if h.state() == HealthState::Diverging && first_div.is_none() {
                first_div = Some(k);
            }
        }
        assert_eq!(h.state(), HealthState::Diverging);
        let grace = cfg().grace_periods;
        assert_eq!(first_div, Some(grace), "diverging right after grace");
        assert_eq!(h.snapshot().http_status(), 503);
        assert_eq!(h.snapshot().first_anomaly_k, Some(grace));
    }

    #[test]
    fn pinned_actuator_under_violation_is_saturated() {
        let mut h = ControllerHealth::new(cfg());
        h.observe(&trace(0, TARGET, 0.3));
        // α pinned at 1 while the delay violates: saturated after the
        // configured streak.
        for k in 1..=3 {
            h.observe(&trace(k, 2.0 * TARGET, 1.0));
        }
        assert_eq!(h.state(), HealthState::Saturated);
        let s = h.snapshot();
        assert_eq!(s.first_anomaly_k, Some(3));
        assert!(s.pinned_high_periods >= 3);
        assert_eq!(s.http_status(), 200, "saturated is alertable but not fatal");

        // α pinned at 0 while violating (ignored actuator) saturates too.
        let mut h2 = ControllerHealth::new(cfg());
        for k in 0..4 {
            h2.observe(&trace(k, 2.0 * TARGET, 0.0));
        }
        assert_eq!(h2.state(), HealthState::Saturated);
        assert!(h2.snapshot().pinned_low_periods >= 3);
    }

    #[test]
    fn bang_bang_actuation_is_oscillating_within_five_periods() {
        let mut h = ControllerHealth::new(cfg());
        let mut detected = None;
        for k in 0..10 {
            // Full-swing alternation of α, delay hovering near target.
            let alpha = if k % 2 == 0 { 1.0 } else { 0.0 };
            h.observe(&trace(k, TARGET * 1.05, alpha));
            if h.state() == HealthState::Oscillating && detected.is_none() {
                detected = Some(k);
            }
        }
        assert_eq!(h.state(), HealthState::Oscillating);
        assert!(detected.unwrap() <= 5, "detected at k={detected:?}");
    }

    #[test]
    fn error_sign_flips_detect_oscillation() {
        let mut h = ControllerHealth::new(cfg());
        let mut detected = None;
        for k in 0..10 {
            // Delay alternating ±50% around the target (outside the
            // noise gate), alpha steady — the e(k) flip path.
            let y = if k % 2 == 0 { TARGET * 1.5 } else { TARGET * 0.5 };
            h.observe(&trace(k, y, 0.5));
            if h.state() == HealthState::Oscillating && detected.is_none() {
                detected = Some(k);
            }
        }
        assert_eq!(h.state(), HealthState::Oscillating);
        assert!(detected.unwrap() <= 6, "detected at k={detected:?}");
    }

    #[test]
    fn small_noise_never_counts_as_oscillation() {
        let mut h = ControllerHealth::new(cfg());
        for k in 0..40 {
            // e(k) flips sign every period but inside the noise gate;
            // alpha wiggles below the swing threshold.
            let y = TARGET * (1.0 + 0.02 * if k % 2 == 0 { 1.0 } else { -1.0 });
            let alpha = 0.4 + 0.05 * ((k % 2) as f64);
            h.observe(&trace(k, y, alpha));
        }
        assert_eq!(h.state(), HealthState::Healthy);
        assert_eq!(h.snapshot().flips_in_window, 0);
    }

    #[test]
    fn mode_and_fault_accounting() {
        let mut h = ControllerHealth::new(cfg());
        let mut t0 = trace(0, TARGET, 0.3);
        t0.mode = LoopMode::Engaged;
        h.observe(&t0);
        let mut t1 = trace(1, TARGET, 0.3);
        t1.mode = LoopMode::Hold;
        t1.fault_flags = crate::telemetry::FLAG_SENSOR_DROPOUT;
        h.observe(&t1);
        let mut t2 = trace(2, TARGET, 0.3);
        t2.mode = LoopMode::Fallback;
        h.observe(&t2);
        let s = h.snapshot();
        assert_eq!(s.hold_periods, 1);
        assert_eq!(s.fallback_periods, 1);
        assert_eq!(s.mode_transitions, 2);
        assert_eq!(s.faulted_periods, 1);
    }

    #[test]
    fn snapshot_json_is_valid_and_nan_safe() {
        let h = ControllerHealth::new(cfg());
        let json = h.snapshot().to_json();
        assert!(json.contains("\"state\":\"healthy\""));
        assert!(json.contains("\"settle_ewma_periods\":null"), "{json}");
        assert!(json.contains("\"first_anomaly_k\":null"));
        assert!(!json.contains("NaN"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let mut h = ControllerHealth::new(cfg());
        for k in 0..4 {
            h.observe(&trace(k, 2.0 * TARGET, 1.0));
        }
        let json = h.snapshot().to_json();
        assert!(json.contains("\"state\":\"saturated\""));
        assert!(json.contains("\"to\":\"saturated\""), "{json}");
        assert!(json.contains("\"first_anomaly_k\":"));
    }

    #[test]
    fn prom_families_render_with_state_label() {
        let mut h = ControllerHealth::new(cfg());
        for k in 0..4 {
            h.observe(&trace(k, 2.0 * TARGET, 1.0));
        }
        let mut p = PromText::new("streamshed");
        h.snapshot().render_prom(&mut p);
        let text = p.finish();
        assert!(text.contains("streamshed_diag_state 3"), "{text}");
        assert!(text.contains("streamshed_diag_state_info{state=\"saturated\"} 1"));
        assert!(text.contains("# TYPE streamshed_diag_anomalies_total counter"));
        assert!(text.contains("streamshed_diag_periods_total 4"));
    }

    #[test]
    fn adaptive_state_mirrors_into_snapshot_json_and_prom() {
        let mut h = ControllerHealth::new(cfg());
        // A plain trace leaves the adapt families dark.
        h.observe(&trace(0, TARGET, 0.3));
        let s = h.snapshot();
        assert!(!s.adapt_seen);
        assert!(s.adapt_cost_est_us.is_nan());
        let mut p = PromText::new("streamshed");
        s.render_prom(&mut p);
        assert!(!p.finish().contains("streamshed_adapt_"));
        assert!(s.to_json().contains("\"adapt_cost_est_us\":null"));

        // An adaptive trace lights them up.
        let mut t = trace(1, TARGET, 0.3);
        t.adapt_cost_us = 10_210.5;
        t.adapt_generation = 2;
        t.adapt_swaps = 3;
        t.adapt_arm = 1;
        h.observe(&t);
        let s = h.snapshot();
        assert!(s.adapt_seen);
        assert_eq!(s.adapt_cost_est_us, 10_210.5);
        assert_eq!(s.adapt_generation, 2);
        assert_eq!(s.adapt_swaps, 3);
        assert_eq!(s.adapt_arm, 1);
        let mut p = PromText::new("streamshed");
        s.render_prom(&mut p);
        let text = p.finish();
        assert!(text.contains("streamshed_adapt_cost_est_us 10210.5"), "{text}");
        assert!(text.contains("streamshed_adapt_gain_generation 2"));
        assert!(text.contains("streamshed_adapt_swaps_total 3"));
        assert!(text.contains("streamshed_adapt_comparator_arm 1"));
        assert!(s.to_json().contains("\"adapt_swaps\":3"));
    }

    #[test]
    fn shared_handle_works_as_event_sink() {
        let diag = SharedDiagnostics::new(cfg());
        let mut sink = diag.clone();
        for k in 0..5 {
            sink.record(&trace(k, TARGET, 0.3));
        }
        assert_eq!(diag.state(), HealthState::Healthy);
        assert_eq!(diag.snapshot().periods, 5);
    }
}
