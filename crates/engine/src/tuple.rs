//! Stream tuples.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier of a *root* tuple — one admission into the query network.
///
/// Derived tuples (join outputs, aggregate emissions, fan-out copies) keep
/// the root id of the input tuple whose processing produced them, so the
/// engine can attribute a single processing delay to each admission, per
/// the paper's definition ("time elapsed since it arrives ... till it
/// leaves the query network", recording the departure of the longest
/// path).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RootId(pub u64);

/// A data tuple flowing through the query network.
///
/// Payloads are deliberately minimal — a join `key` and a numeric `value` —
/// which is all the paper's workloads require (values drawn from uniform
/// distributions to pin operator selectivities, §4.2). The processing-cost
/// model lives on operators, not tuples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// The admission this tuple's work is attributed to.
    pub root: RootId,
    /// Arrival time of the root tuple at the network buffer.
    pub arrival: SimTime,
    /// Join/grouping key.
    pub key: u64,
    /// Numeric payload.
    pub value: f64,
}

impl Tuple {
    /// Creates a fresh root tuple at its admission time.
    pub fn new(root: RootId, arrival: SimTime, key: u64, value: f64) -> Self {
        Self {
            root,
            arrival,
            key,
            value,
        }
    }

    /// Derives an output tuple that inherits this tuple's root and arrival
    /// (delay attribution) but carries new data.
    pub fn derive(&self, key: u64, value: f64) -> Tuple {
        Tuple {
            root: self.root,
            arrival: self.arrival,
            key,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_keeps_root_and_arrival() {
        let t = Tuple::new(RootId(7), SimTime(123), 1, 2.0);
        let d = t.derive(9, -1.0);
        assert_eq!(d.root, RootId(7));
        assert_eq!(d.arrival, SimTime(123));
        assert_eq!(d.key, 9);
        assert_eq!(d.value, -1.0);
    }
}
