//! Anomaly-triggered flight recorder.
//!
//! When the diagnostics state machine ([`diagnostics`](crate::diagnostics))
//! transitions into an anomalous state (`Oscillating` / `Saturated` /
//! `Diverging`), the observability plane snapshots the in-memory trace
//! ring plus the full diagnostics state to a self-contained JSONL bundle
//! on disk — every anomaly ships its own reproduction artifact.
//!
//! Bundle format (one file per anomaly, `flight_<unix_ms>_k<k>_<state>.jsonl`):
//!
//! * line 1 — a header object: `{"kind":"flight_header","k":…,
//!   "state":"…","unix_ms":…,"traces":N,"diagnostics":{…}}` where
//!   `diagnostics` is the [`DiagnosticsSnapshot`] JSON.
//! * lines 2…N+1 — the retained [`ControlTrace`] records, oldest first,
//!   exactly as [`ControlTrace::to_jsonl`] writes them (so every
//!   existing trace tool ingests a bundle tail unchanged).
//!
//! Writes are atomic (temp file + rename), **debounced** (a flapping
//! classifier cannot write a bundle per period) and **bounded** (oldest
//! bundles are deleted beyond a retention limit).

use crate::diagnostics::{DiagnosticsSnapshot, HealthState};
use crate::telemetry::ControlTrace;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Tuning of the flight recorder.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Directory bundles are written into (created on demand).
    pub dir: PathBuf,
    /// Minimum number of control periods between two bundles. A
    /// transition closer than this to the previously recorded one is
    /// skipped.
    pub debounce_periods: u64,
    /// Maximum bundles kept in `dir`; the oldest (by file name, which
    /// sorts chronologically) are deleted beyond this.
    pub max_bundles: usize,
}

impl FlightConfig {
    /// Defaults: 20-period debounce, 8 retained bundles.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            debounce_periods: 20,
            max_bundles: 8,
        }
    }

    /// Same defaults, but writing into a per-run subdirectory
    /// `base/<sanitised run_key>` — so many concurrent runs (a scenario
    /// campaign) neither interleave their bundles nor evict each other's
    /// through the shared retention limit: the 8-bundle cap applies per
    /// run. Key characters outside `[A-Za-z0-9._-]` become `_`.
    pub fn for_run(base: impl Into<PathBuf>, run_key: &str) -> Self {
        let sane: String = run_key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let sane = if sane.is_empty() { "run".to_string() } else { sane };
        Self::new(base.into().join(sane))
    }
}

/// Writes anomaly bundles. One instance per observability plane; not
/// thread-safe by itself (the plane wraps it in a mutex).
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    last_recorded_k: Option<u64>,
    bundles_written: u64,
    skipped_debounce: u64,
    last_error: Option<String>,
}

impl FlightRecorder {
    /// Creates a recorder (panics on a zero retention limit).
    pub fn new(cfg: FlightConfig) -> Self {
        assert!(cfg.max_bundles >= 1, "retention must keep at least 1 bundle");
        Self {
            cfg,
            last_recorded_k: None,
            bundles_written: 0,
            skipped_debounce: 0,
            last_error: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FlightConfig {
        &self.cfg
    }

    /// Bundles written so far.
    pub fn bundles_written(&self) -> u64 {
        self.bundles_written
    }

    /// Transitions skipped by the debounce.
    pub fn skipped_debounce(&self) -> u64 {
        self.skipped_debounce
    }

    /// The last I/O error message, if any (recording is best-effort: an
    /// unwritable disk must not take down the control loop).
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// Records a transition into `state` at period `k`: writes one
    /// bundle holding `snapshot` and `traces` unless debounced.
    /// Returns the bundle path when one was written.
    pub fn record_transition(
        &mut self,
        k: u64,
        state: HealthState,
        snapshot: &DiagnosticsSnapshot,
        traces: &[ControlTrace],
    ) -> Option<PathBuf> {
        self.record_transition_profiled(k, state, snapshot, traces, None)
    }

    /// Like [`record_transition`](Self::record_transition), additionally
    /// embedding the latency truth plane's stage-timing profile in the
    /// bundle header (`"profile":{…}`), so a post-mortem shows *where*
    /// in the pipeline the anomaly's latency lived.
    pub fn record_transition_profiled(
        &mut self,
        k: u64,
        state: HealthState,
        snapshot: &DiagnosticsSnapshot,
        traces: &[ControlTrace],
        profile: Option<&crate::spans::ProfileSnapshot>,
    ) -> Option<PathBuf> {
        if let Some(last) = self.last_recorded_k {
            if k.saturating_sub(last) < self.cfg.debounce_periods {
                self.skipped_debounce += 1;
                return None;
            }
        }
        match self.write_bundle(k, state, snapshot, traces, profile) {
            Ok(path) => {
                self.last_recorded_k = Some(k);
                self.bundles_written += 1;
                self.last_error = None;
                self.enforce_retention();
                Some(path)
            }
            Err(e) => {
                self.last_error = Some(e.to_string());
                None
            }
        }
    }

    fn write_bundle(
        &self,
        k: u64,
        state: HealthState,
        snapshot: &DiagnosticsSnapshot,
        traces: &[ControlTrace],
        profile: Option<&crate::spans::ProfileSnapshot>,
    ) -> std::io::Result<PathBuf> {
        fs::create_dir_all(&self.cfg.dir)?;
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let name = format!("flight_{unix_ms:013}_k{k:08}_{}.jsonl", state.as_str());
        let path = self.cfg.dir.join(&name);
        let tmp = self.cfg.dir.join(format!(".{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            let profile_field = match profile {
                Some(p) => format!(",\"profile\":{}", p.to_json()),
                None => String::new(),
            };
            writeln!(
                f,
                "{{\"kind\":\"flight_header\",\"k\":{k},\"state\":\"{}\",\
                 \"unix_ms\":{unix_ms},\"traces\":{},\"diagnostics\":{}{profile_field}}}",
                state.as_str(),
                traces.len(),
                snapshot.to_json(),
            )?;
            for t in traces {
                writeln!(f, "{}", t.to_jsonl())?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Deletes the oldest bundles beyond the retention limit. File names
    /// start with a zero-padded unix-ms stamp, so lexicographic order is
    /// chronological.
    fn enforce_retention(&self) {
        let mut bundles = list_bundles(&self.cfg.dir);
        if bundles.len() <= self.cfg.max_bundles {
            return;
        }
        bundles.sort();
        let excess = bundles.len() - self.cfg.max_bundles;
        for path in bundles.into_iter().take(excess) {
            let _ = fs::remove_file(path);
        }
    }
}

/// The flight bundles currently present in `dir`, unsorted.
pub fn list_bundles(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight_") && n.ends_with(".jsonl"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{ControllerHealth, DiagnosticsConfig};
    use crate::hook::{Decision, PeriodSnapshot};
    use crate::time::{secs, SimTime};
    use std::time::Duration;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "streamshed_flight_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn trace(k: u64) -> ControlTrace {
        let snap = PeriodSnapshot {
            k,
            now: SimTime::ZERO + secs(k + 1),
            period: secs(1),
            offered: 100,
            admitted: 90,
            dropped_entry: 10,
            dropped_network: 0,
            completed: 80,
            outstanding: 10,
            queued_tuples: 10,
            queued_load_us: 1000.0,
            measured_cost_us: Some(100.0),
            mean_delay_ms: Some(4000.0),
            cpu_busy_us: 900_000,
        };
        ControlTrace::capture(&snap, &Decision::entry(0.1), None, 100)
    }

    fn snapshot() -> DiagnosticsSnapshot {
        ControllerHealth::new(DiagnosticsConfig::for_target(Duration::from_secs(2))).snapshot()
    }

    #[test]
    fn bundle_written_atomically_with_header_and_traces() {
        let dir = temp_dir("basic");
        let mut fr = FlightRecorder::new(FlightConfig::new(&dir));
        let traces: Vec<_> = (0..5).map(trace).collect();
        let path = fr
            .record_transition(42, HealthState::Saturated, &snapshot(), &traces)
            .expect("bundle written");
        assert!(path.exists());
        let body = fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = body.lines().collect();
        assert_eq!(lines.len(), 6, "header + 5 traces");
        assert!(lines[0].contains("\"kind\":\"flight_header\""));
        assert!(lines[0].contains("\"state\":\"saturated\""));
        assert!(lines[0].contains("\"k\":42"));
        assert!(lines[0].contains("\"diagnostics\":{"));
        assert!(lines[1].contains("\"k\":0"));
        // No stray temp files.
        assert!(fs::read_dir(&dir)
            .unwrap()
            .all(|e| !e.unwrap().file_name().to_string_lossy().ends_with(".tmp")));
        assert_eq!(fr.bundles_written(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn debounce_skips_nearby_transitions() {
        let dir = temp_dir("debounce");
        let mut fr = FlightRecorder::new(FlightConfig::new(&dir));
        let traces = [trace(0)];
        assert!(fr
            .record_transition(10, HealthState::Oscillating, &snapshot(), &traces)
            .is_some());
        // Within the 20-period debounce window: skipped.
        assert!(fr
            .record_transition(25, HealthState::Saturated, &snapshot(), &traces)
            .is_none());
        assert_eq!(fr.skipped_debounce(), 1);
        // Beyond it: recorded.
        assert!(fr
            .record_transition(31, HealthState::Saturated, &snapshot(), &traces)
            .is_some());
        assert_eq!(fr.bundles_written(), 2);
        assert_eq!(list_bundles(&dir).len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_deletes_oldest_bundles() {
        let dir = temp_dir("retention");
        let mut cfg = FlightConfig::new(&dir);
        cfg.debounce_periods = 0;
        cfg.max_bundles = 3;
        let mut fr = FlightRecorder::new(cfg);
        let traces = [trace(0)];
        for k in 0..6 {
            assert!(fr
                .record_transition(k * 100, HealthState::Diverging, &snapshot(), &traces)
                .is_some());
        }
        let mut left = list_bundles(&dir);
        assert_eq!(left.len(), 3);
        left.sort();
        // The survivors are the newest ones (k 300/400/500 in the name).
        let names: Vec<_> = left
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().any(|n| n.contains("k00000500")), "{names:?}");
        assert!(!names.iter().any(|n| n.contains("k00000000")), "{names:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_run_config_isolates_retention_between_runs() {
        let base = temp_dir("per_run");
        // The raw campaign key contains characters unfit for paths.
        let a = FlightConfig::for_run(&base, "web+stale_q+ident+4shard/paper");
        let b = FlightConfig::for_run(&base, "poisson+clean+ident+1shard/paper");
        assert_ne!(a.dir, b.dir);
        assert!(a.dir.starts_with(&base));
        let name = a.dir.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || "._-".contains(c)),
            "{name}"
        );
        assert_eq!(FlightConfig::for_run(&base, "???").dir, base.join("___"));
        assert_eq!(FlightConfig::for_run(&base, "").dir, base.join("run"));

        // Bundles written under one run never evict the other run's.
        let mut cfg_a = a.clone();
        cfg_a.debounce_periods = 0;
        cfg_a.max_bundles = 2;
        let mut fr_a = FlightRecorder::new(cfg_a);
        let mut fr_b = FlightRecorder::new(b.clone());
        let traces = [trace(0)];
        assert!(fr_b
            .record_transition(1, HealthState::Diverging, &snapshot(), &traces)
            .is_some());
        for k in 0..5 {
            assert!(fr_a
                .record_transition(k, HealthState::Diverging, &snapshot(), &traces)
                .is_some());
        }
        assert_eq!(list_bundles(&fr_a.config().dir).len(), 2, "run A retention");
        assert_eq!(list_bundles(&b.dir).len(), 1, "run B untouched");
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn unwritable_dir_records_error_not_panic() {
        let mut fr = FlightRecorder::new(FlightConfig::new(
            "/proc/definitely/not/writable/streamshed",
        ));
        let out = fr.record_transition(5, HealthState::Diverging, &snapshot(), &[trace(0)]);
        assert!(out.is_none());
        assert!(fr.last_error().is_some());
        assert_eq!(fr.bundles_written(), 0);
    }
}
