//! Bounded lock-free ingress ring for the shard data plane.
//!
//! The per-shard mailbox used to be a crossbeam-style channel whose
//! vendored stand-in takes a mutex per `send`. Under the batched ingress
//! path (PR 8) the mailbox is the hottest shared structure in the engine,
//! so it is replaced with a purpose-built bounded ring:
//!
//! * **Power-of-two slot array with index masking.** Head and tail are
//!   monotonically increasing `u64` sequence numbers; a slot index is
//!   `seq & mask`. Wraparound needs no branch and cannot skew slot reuse.
//! * **Cache-line-padded indices.** The producer-side `tail` and the
//!   consumer-side `head` live on their own 64-byte lines
//!   ([`CachePadded`]) so batch pushes and pops do not false-share.
//! * **Batch push / batch pop with one release/acquire pair per batch.**
//!   A producer reserves `n` slots with a single CAS on `tail`, writes
//!   the payloads, then publishes them with one [`fence`]`(Release)`
//!   followed by per-slot sequence stamps; the consumer scans the ready
//!   prefix, issues one [`fence`]`(Acquire)`, copies the payloads out and
//!   retires them with a single release store of `head`.
//! * **Close flag with exact drain semantics.** [`SpscRing::close`] is
//!   idempotent; pushes that begin after it observe [`Push::Closed`]
//!   deterministically, while pushes already in flight (tracked by an
//!   `in_flight` gate) are allowed to land and are drained by the
//!   consumer before [`SpscRing::pop_wait`] reports exhaustion. This is
//!   what preserves the engine's `rejected_closed` counter semantics and
//!   the shard-stress conservation invariants.
//!
//! Payloads are `u64` *stamps*: nanoseconds since the ring's
//! [`epoch`](SpscRing::epoch). All rings of one engine share an epoch so
//! a batch can take a single timestamp at the front door and fan it out
//! to every shard without re-reading the clock.
//!
//! The ring is multi-producer (reservation CAS) / single-consumer; the
//! name keeps the SPSC intent of the per-shard topology — exactly one
//! worker ever pops — while the push side tolerates the engine's many
//! offer threads.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Pads a value out to its own 64-byte cache line so the producer and
/// consumer indices never false-share. (The vendored crossbeam stand-in
/// does not provide `CachePadded`, so the engine carries its own.)
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Outcome of a push against the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Push {
    /// `n` payloads were enqueued (may be less than requested when the
    /// ring ran out of capacity mid-batch; the shortfall was *not*
    /// enqueued and maps to `rejected_capacity` at the front door).
    Pushed(usize),
    /// The ring was closed before the push began; nothing was enqueued.
    Closed,
}

/// How long a waiting consumer parks on the doorbell before re-checking
/// the ring. A missed wakeup therefore costs at most this much latency,
/// which keeps the producer→consumer handshake simple (no exactly-once
/// wakeup protocol is needed for correctness).
const PARK: Duration = Duration::from_micros(200);

/// Spin/yield rounds before a consumer parks on the doorbell.
const SPIN_ROUNDS: u32 = 64;

/// Bounded lock-free ring: many reserving producers, one consumer.
#[derive(Debug)]
pub struct SpscRing {
    /// Slot-index mask; the slot array length is `mask + 1`.
    mask: u64,
    /// Logical capacity (requested by the caller, ≤ `mask + 1`). A push
    /// never admits more than `cap` outstanding payloads even though the
    /// slot array may be larger after power-of-two rounding.
    cap: u64,
    /// Per-slot readiness stamps: slot `s & mask` holds `s + 1` once the
    /// payload for sequence `s` is readable. Sequence numbers are unique
    /// over the ring's lifetime, so a stale stamp can never be mistaken
    /// for a fresh one.
    seq: Box<[AtomicU64]>,
    /// Payload array (stamps, see module docs).
    data: Box<[AtomicU64]>,
    /// Next sequence the consumer will pop. Release-stored by the
    /// consumer after copying payloads out; acquire-loaded by producers
    /// when computing free capacity (this pairing is what makes slot
    /// reuse safe).
    head: CachePadded<AtomicU64>,
    /// Next sequence a producer will reserve.
    tail: CachePadded<AtomicU64>,
    /// Set once by [`close`](Self::close); never cleared.
    closed: AtomicBool,
    /// Number of pushes past the closed-gate but not yet published. The
    /// closing drain waits for this to reach zero so no payload is
    /// stranded by a racing push.
    in_flight: AtomicU64,
    /// Consumer-is-parked hint; producers ring the doorbell only when set.
    sleeping: AtomicBool,
    /// Doorbell for a parked consumer.
    doorbell: Mutex<()>,
    /// Condition variable paired with `doorbell`.
    wake: Condvar,
    /// Time origin for payload stamps.
    epoch: Instant,
}

impl SpscRing {
    /// Creates a ring that can hold `capacity` payloads, with its own
    /// epoch. Capacity is clamped to at least 1.
    pub fn new(capacity: usize) -> Self {
        Self::with_epoch(capacity, Instant::now())
    }

    /// Creates a ring with an explicit stamp epoch (shared across all
    /// rings of one engine so one front-door timestamp serves a whole
    /// batch).
    pub fn with_epoch(capacity: usize, epoch: Instant) -> Self {
        let cap = capacity.max(1) as u64;
        let slots = cap.next_power_of_two() as usize;
        let mk = |_: usize| AtomicU64::new(0);
        Self {
            mask: slots as u64 - 1,
            cap,
            seq: (0..slots).map(mk).collect(),
            data: (0..slots).map(mk).collect(),
            head: CachePadded(AtomicU64::new(0)),
            tail: CachePadded(AtomicU64::new(0)),
            closed: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            sleeping: AtomicBool::new(false),
            doorbell: Mutex::new(()),
            wake: Condvar::new(),
            epoch,
        }
    }

    /// The ring's stamp epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Current stamp: nanoseconds elapsed since the epoch.
    pub fn stamp_now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Logical capacity.
    pub fn capacity(&self) -> usize {
        self.cap as usize
    }

    /// Approximate number of queued payloads.
    pub fn len(&self) -> usize {
        let h = self.head.load(Ordering::Acquire);
        let t = self.tail.load(Ordering::Acquire);
        t.saturating_sub(h) as usize
    }

    /// Whether the ring currently looks empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Closes the ring. Idempotent; pushes that start after this returns
    /// deterministically see [`Push::Closed`]. The consumer drains any
    /// payloads (including racing in-flight pushes) before
    /// [`pop_wait`](Self::pop_wait) reports exhaustion.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Wake a parked consumer so it can run the closing drain.
        let _g = self.doorbell.lock().unwrap();
        self.wake.notify_all();
    }

    /// Pushes one payload. Equivalent to `push_repeat(value, 1)`.
    pub fn push(&self, value: u64) -> Push {
        self.push_repeat(value, 1)
    }

    /// Pushes `n` copies of `value` in one reservation. Returns
    /// [`Push::Pushed`] with the number actually enqueued (0..=n; short
    /// when capacity ran out) or [`Push::Closed`] if the ring was closed
    /// before the push began. One release fence publishes the whole
    /// batch.
    pub fn push_repeat(&self, value: u64, n: usize) -> Push {
        self.push_with(n, |_| value)
    }

    /// Pushes `n` payloads produced by `f(i)` for `i` in `0..pushed`.
    /// Same contract as [`push_repeat`](Self::push_repeat).
    pub fn push_with(&self, n: usize, mut f: impl FnMut(usize) -> u64) -> Push {
        if n == 0 {
            return if self.is_closed() {
                Push::Closed
            } else {
                Push::Pushed(0)
            };
        }
        // Close gate: announce the push, then check the flag. `close()`
        // stores the flag SeqCst before the drain waits on `in_flight`,
        // so a push either observes closed here or is counted in flight
        // and its payloads are drained.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.closed.load(Ordering::SeqCst) {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return Push::Closed;
        }
        // Reserve up to `n` slots with one CAS on `tail`.
        let (start, got) = loop {
            let t = self.tail.load(Ordering::Relaxed);
            let h = self.head.load(Ordering::Acquire);
            let free = self.cap.saturating_sub(t.wrapping_sub(h));
            let take = (n as u64).min(free);
            if take == 0 {
                break (t, 0);
            }
            if self
                .tail
                .compare_exchange_weak(t, t + take, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break (t, take);
            }
        };
        if got == 0 {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return Push::Pushed(0);
        }
        for i in 0..got {
            let s = start + i;
            self.data[(s & self.mask) as usize].store(f(i as usize), Ordering::Relaxed);
        }
        // Publish the whole batch with a single release fence; the
        // per-slot stamps below may then be relaxed.
        fence(Ordering::Release);
        for i in 0..got {
            let s = start + i;
            self.seq[(s & self.mask) as usize].store(s + 1, Ordering::Relaxed);
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        if self.sleeping.load(Ordering::SeqCst) {
            let _g = self.doorbell.lock().unwrap();
            self.wake.notify_all();
        }
        Push::Pushed(got as usize)
    }

    /// Non-blocking batch pop into `out`. Returns the number of payloads
    /// copied (0 when nothing is ready). Single consumer only.
    pub fn pop_n(&self, out: &mut [u64]) -> usize {
        if out.is_empty() {
            return 0;
        }
        let h = self.head.load(Ordering::Relaxed);
        // Scan the contiguous ready prefix.
        let mut n = 0u64;
        let max = out.len() as u64;
        while n < max {
            let s = h + n;
            if self.seq[(s & self.mask) as usize].load(Ordering::Relaxed) != s + 1 {
                break;
            }
            n += 1;
        }
        if n == 0 {
            return 0;
        }
        // One acquire fence pairs with the producers' release fence for
        // the whole batch.
        fence(Ordering::Acquire);
        for i in 0..n {
            let s = h + i;
            out[i as usize] = self.data[(s & self.mask) as usize].load(Ordering::Relaxed);
        }
        // Retire the batch; the release store pairs with the producers'
        // acquire load of `head` so the slots are safe to reuse.
        self.head.store(h + n, Ordering::Release);
        n as usize
    }

    /// Blocking batch pop: spins briefly, then parks on the doorbell.
    /// Returns `0` **only** when the ring is closed and fully drained
    /// (no racing push can be stranded); otherwise returns ≥ 1.
    pub fn pop_wait(&self, out: &mut [u64]) -> usize {
        let mut spins = 0u32;
        loop {
            let n = self.pop_n(out);
            if n > 0 {
                return n;
            }
            if self.closed.load(Ordering::SeqCst) {
                // Closing drain: wait out in-flight pushes, then take
                // one final look.
                while self.in_flight.load(Ordering::SeqCst) != 0 {
                    std::hint::spin_loop();
                }
                return self.pop_n(out);
            }
            spins += 1;
            if spins <= SPIN_ROUNDS {
                std::hint::spin_loop();
                if spins.is_multiple_of(16) {
                    std::thread::yield_now();
                }
                continue;
            }
            // Park. The PARK timeout bounds the cost of any lost-wakeup
            // race; correctness never depends on the doorbell.
            self.sleeping.store(true, Ordering::SeqCst);
            if !self.is_empty() || self.closed.load(Ordering::SeqCst) {
                self.sleeping.store(false, Ordering::SeqCst);
                continue;
            }
            let g = self.doorbell.lock().unwrap();
            if self.is_empty() && !self.closed.load(Ordering::SeqCst) {
                let _ = self.wake.wait_timeout(g, PARK).unwrap();
            }
            self.sleeping.store(false, Ordering::SeqCst);
            spins = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip_preserves_fifo() {
        let ring = SpscRing::new(8);
        assert_eq!(ring.push_with(5, |i| i as u64 * 10), Push::Pushed(5));
        let mut out = [0u64; 8];
        assert_eq!(ring.pop_n(&mut out), 5);
        assert_eq!(&out[..5], &[0, 10, 20, 30, 40]);
        assert_eq!(ring.pop_n(&mut out), 0);
    }

    #[test]
    fn capacity_is_logical_not_rounded() {
        let ring = SpscRing::new(5);
        assert_eq!(ring.capacity(), 5);
        assert_eq!(ring.push_repeat(7, 9), Push::Pushed(5));
        assert_eq!(ring.push(7), Push::Pushed(0));
        let mut out = [0u64; 16];
        assert_eq!(ring.pop_n(&mut out), 5);
        assert_eq!(ring.push_repeat(3, 2), Push::Pushed(2));
    }

    #[test]
    fn wraparound_many_times_keeps_order() {
        let ring = SpscRing::new(4);
        let mut expect = 0u64;
        let mut out = [0u64; 4];
        for round in 0..1000u64 {
            let n = (round % 4 + 1) as usize;
            assert_eq!(ring.push_with(n, |i| round * 8 + i as u64), Push::Pushed(n));
            let got = ring.pop_n(&mut out[..n]);
            assert_eq!(got, n);
            for (i, v) in out[..n].iter().enumerate() {
                assert_eq!(*v, round * 8 + i as u64);
                expect += 1;
            }
        }
        assert_eq!(expect, (0..1000u64).map(|r| r % 4 + 1).sum::<u64>());
    }

    #[test]
    fn close_rejects_new_pushes_but_drains_existing() {
        let ring = SpscRing::new(8);
        assert_eq!(ring.push_repeat(1, 3), Push::Pushed(3));
        ring.close();
        assert_eq!(ring.push(9), Push::Closed);
        let mut out = [0u64; 8];
        assert_eq!(ring.pop_wait(&mut out), 3);
        assert_eq!(ring.pop_wait(&mut out), 0);
        // Exhaustion is stable.
        assert_eq!(ring.pop_wait(&mut out), 0);
    }

    #[test]
    fn pop_wait_blocks_until_producer_arrives() {
        let ring = Arc::new(SpscRing::new(16));
        let r2 = Arc::clone(&ring);
        let t = std::thread::spawn(move || {
            let mut out = [0u64; 16];
            let n = r2.pop_wait(&mut out);
            (n, out[0])
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ring.push(42), Push::Pushed(1));
        let (n, v) = t.join().unwrap();
        assert_eq!((n, v), (1, 42));
        ring.close();
    }

    #[test]
    fn stamps_are_monotone_against_epoch() {
        let ring = SpscRing::new(4);
        let a = ring.stamp_now();
        std::thread::sleep(Duration::from_millis(2));
        let b = ring.stamp_now();
        assert!(b > a);
    }
}
