//! Property and stress tests for the bounded SPSC ring behind the
//! batched front door ([`streamshed_engine::ring::SpscRing`]).
//!
//! The properties check the ring against a `VecDeque` reference model
//! under arbitrary interleavings of batch pushes and batch pops: FIFO
//! order is exact, the logical capacity is never exceeded, and every
//! accepted element is popped exactly once. The stress test races a
//! producer against a consumer (plus a mid-flight `close()`) and asserts
//! exact conservation: accepted == popped, with no duplicates and no
//! reordering.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use streamshed_engine::ring::{Push, SpscRing};

/// One scripted step against the ring: push a batch of `n` values or pop
/// with an `n`-slot buffer.
#[derive(Debug, Clone)]
enum Step {
    Push(usize),
    Pop(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1usize..=64).prop_map(Step::Push),
        (1usize..=64).prop_map(Step::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary interleavings of batch pushes and pops agree with a
    /// `VecDeque` model element for element, and the ring never holds
    /// more than its logical capacity.
    #[test]
    fn ring_matches_vecdeque_model(
        capacity in 1usize..=96,
        steps in proptest::collection::vec(step_strategy(), 1..80),
    ) {
        let ring = SpscRing::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for step in steps {
            match step {
                Step::Push(n) => {
                    let base = next;
                    match ring.push_with(n, |i| base + i as u64) {
                        Push::Pushed(accepted) => {
                            // Partial acceptance is a prefix: exactly the
                            // first `accepted` values are in the ring.
                            prop_assert!(accepted <= n);
                            let free = capacity - model.len();
                            prop_assert_eq!(accepted, n.min(free));
                            for i in 0..accepted as u64 {
                                model.push_back(base + i);
                            }
                            next += accepted as u64;
                        }
                        Push::Closed => prop_assert!(false, "ring is never closed here"),
                    }
                }
                Step::Pop(n) => {
                    let mut buf = vec![0u64; n];
                    let got = ring.pop_n(&mut buf);
                    prop_assert!(got <= model.len());
                    prop_assert_eq!(got, n.min(model.len()));
                    for &v in &buf[..got] {
                        prop_assert_eq!(Some(v), model.pop_front(), "FIFO order");
                    }
                }
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert!(ring.len() <= capacity, "capacity is a hard bound");
        }
        // Drain: everything the model still holds comes out, in order.
        let mut buf = vec![0u64; capacity];
        while !model.is_empty() {
            let got = ring.pop_n(&mut buf);
            prop_assert!(got > 0);
            for &v in &buf[..got] {
                prop_assert_eq!(Some(v), model.pop_front());
            }
        }
        prop_assert!(ring.is_empty());
    }

    /// `push_repeat` and single-value `push` obey the same capacity
    /// accounting as `push_with`.
    #[test]
    fn push_variants_agree_on_accounting(
        capacity in 1usize..=64,
        batches in proptest::collection::vec(1usize..=48, 1..20),
    ) {
        let ring = SpscRing::new(capacity);
        let mut held = 0usize;
        for n in batches {
            let accepted = match ring.push_repeat(7, n) {
                Push::Pushed(a) => a,
                Push::Closed => unreachable!(),
            };
            prop_assert_eq!(accepted, n.min(capacity - held));
            held += accepted;
            if held == capacity {
                let mut buf = vec![0u64; capacity];
                let got = ring.pop_n(&mut buf);
                prop_assert_eq!(got, held);
                held = 0;
            }
        }
    }
}

/// Two threads race batched pushes against batched pops, with `close()`
/// fired mid-flight from the producer side. Conservation must be exact:
/// every accepted value is popped exactly once, in FIFO order, and
/// nothing is accepted after close.
#[test]
fn two_thread_stress_conserves_under_racing_close() {
    for round in 0..8u64 {
        let ring = Arc::new(SpscRing::new(256));
        let accepted = Arc::new(AtomicU64::new(0));

        let producer = {
            let ring = Arc::clone(&ring);
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                let mut next = 0u64;
                loop {
                    let batch = 1 + (next % 97) as usize;
                    let base = next;
                    match ring.push_with(batch, |i| base + i as u64) {
                        Push::Pushed(a) => {
                            accepted.fetch_add(a as u64, Ordering::SeqCst);
                            next += a as u64;
                        }
                        Push::Closed => return,
                    }
                    // Close at a round-dependent point so each run
                    // exercises a different interleaving.
                    if next > 20_000 + round * 5_000 {
                        ring.close();
                        return;
                    }
                    if next % 1024 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        };

        // Consumer: pop_wait returns 0 only when closed AND drained, so a
        // plain drain loop is also the shutdown handshake.
        let mut popped = 0u64;
        let mut expect = 0u64;
        let mut buf = [0u64; 64];
        loop {
            let got = ring.pop_wait(&mut buf);
            if got == 0 {
                break;
            }
            for &v in &buf[..got] {
                assert_eq!(v, expect, "round {round}: FIFO order with no gaps");
                expect += 1;
            }
            popped += got as u64;
        }
        producer.join().unwrap();

        assert_eq!(
            popped,
            accepted.load(Ordering::SeqCst),
            "round {round}: every accepted value popped exactly once"
        );
        assert!(ring.is_closed());
        assert!(matches!(ring.push(1), Push::Closed), "post-close push rejected");
    }
}
