//! Property-based tests for the engine's operators, network builder, and
//! time arithmetic — plus the statistical-equivalence and determinism
//! properties of the geometric-skip entry shedder.

use proptest::prelude::*;
use streamshed_engine::network::NetworkBuilder;
use streamshed_engine::operator::{
    AggFunc, Aggregate, Filter, Map, OperatorLogic, OutputBuffer, WindowJoin, WindowSpec,
};
use streamshed_engine::time::{micros, millis, SimDuration, SimTime};
use streamshed_engine::tuple::{RootId, Tuple};

fn run_op(
    op: &mut dyn OperatorLogic,
    port: usize,
    tuple: Tuple,
    now: SimTime,
) -> Vec<Tuple> {
    // The buffer's item list is crate-private (outputs are routed inside
    // the engine); these properties only need output *counts*, so return
    // one placeholder per emitted tuple.
    let mut out = OutputBuffer::new();
    op.process(port, &tuple, now, &mut out);
    vec![tuple; out.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A threshold filter's pass rate converges to its declared
    /// selectivity for uniform values.
    #[test]
    fn filter_statistical_selectivity(threshold in 0.05..0.95f64, seed in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = Filter::value_below(threshold);
        let n = 4000;
        let mut passed = 0usize;
        for i in 0..n {
            let t = Tuple::new(RootId(i as u64), SimTime::ZERO, 0, rng.gen::<f64>());
            passed += run_op(&mut f, 0, t, SimTime::ZERO).len();
        }
        let rate = passed as f64 / n as f64;
        prop_assert!((rate - threshold).abs() < 0.05, "rate {rate} vs {threshold}");
    }

    /// A count-window aggregate emits exactly ⌊n/w⌋ summaries for n
    /// inputs.
    #[test]
    fn aggregate_emission_count(window in 1usize..20, n in 0usize..200) {
        let mut a = Aggregate::new(window, AggFunc::Sum);
        let mut emitted = 0usize;
        for i in 0..n {
            let t = Tuple::new(RootId(i as u64), SimTime::ZERO, 0, 1.0);
            emitted += run_op(&mut a, 0, t, SimTime::ZERO).len();
        }
        prop_assert_eq!(emitted, n / window);
    }

    /// Join output count is symmetric in the probe order for matched
    /// batches (same keys both sides, same window).
    #[test]
    fn join_symmetry(keys in prop::collection::vec(0u64..8, 1..30)) {
        let count_matches = |first_port: usize| {
            let mut j = WindowJoin::new(WindowSpec::Count(1000), 0.5);
            let mut total = 0usize;
            for (i, &k) in keys.iter().enumerate() {
                let t = Tuple::new(RootId(i as u64), SimTime(i as u64), k, 1.0);
                total += run_op(&mut j, first_port, t, SimTime(i as u64)).len();
            }
            for (i, &k) in keys.iter().enumerate() {
                let t = Tuple::new(RootId(1000 + i as u64), SimTime(100 + i as u64), k, 1.0);
                total += run_op(&mut j, 1 - first_port, t, SimTime(100 + i as u64)).len();
            }
            total
        };
        prop_assert_eq!(count_matches(0), count_matches(1));
    }

    /// Join windows never retain more than the count bound.
    #[test]
    fn join_window_bound(cap in 1usize..50, n in 0u64..200) {
        let mut j = WindowJoin::new(WindowSpec::Count(cap), 0.5);
        for i in 0..n {
            let t = Tuple::new(RootId(i), SimTime(i), i % 5, 1.0);
            let _ = run_op(&mut j, (i % 2) as usize, t, SimTime(i));
        }
        prop_assert!(j.window_len(0) <= cap);
        prop_assert!(j.window_len(1) <= cap);
    }

    /// Random linear chains always build, and their expected cost is the
    /// sum of operator costs.
    #[test]
    fn chains_always_build(costs in prop::collection::vec(1u64..10_000, 1..20)) {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for (i, &c) in costs.iter().enumerate() {
            let node = b.add(format!("n{i}"), micros(c), Map::identity());
            match prev {
                None => { b.entry(node); }
                Some(p) => { b.connect(p, node); }
            }
            prev = Some(node);
        }
        let net = b.build().unwrap();
        let want: u64 = costs.iter().sum();
        prop_assert!((net.expected_cost_per_tuple_us() - want as f64).abs() < 1e-6);
    }

    /// Random DAGs (edges only forward) always pass validation; adding a
    /// back edge always fails with Cyclic.
    #[test]
    fn dag_validation(n in 2usize..10, extra_edges in prop::collection::vec((0usize..10, 0usize..10), 0..12)) {
        let build = |back_edge: bool| {
            let mut b = NetworkBuilder::new();
            let nodes: Vec<_> = (0..n)
                .map(|i| b.add(format!("n{i}"), micros(10), Map::identity()))
                .collect();
            b.entry(nodes[0]);
            for w in nodes.windows(2) {
                b.connect(w[0], w[1]);
            }
            for &(from, to) in &extra_edges {
                let (f, t) = (from % n, to % n);
                if f < t {
                    b.connect(nodes[f], nodes[t]);
                }
            }
            if back_edge {
                b.connect(nodes[n - 1], nodes[0]);
            }
            b.build()
        };
        prop_assert!(build(false).is_ok());
        prop_assert!(matches!(
            build(true),
            Err(streamshed_engine::network::NetworkError::Cyclic)
        ));
    }

    /// Geometric-skip sampling is statistically indistinguishable from
    /// per-tuple Bernoulli coin flips: over many decisions, both observe
    /// a drop rate within sampling tolerance of α, for α across the full
    /// shedding range.
    #[test]
    fn geometric_skip_matches_bernoulli_rate(
        alpha_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        use rand::Rng as _;
        use streamshed_engine::rng::{engine_rng, GeometricSkip};
        let alpha = [0.01f64, 0.1, 0.5, 0.9][alpha_idx];
        let n = 100_000u64;
        // 6σ of a Binomial(n, α) proportion, plus a small absolute slack
        // for the tiny-α cases.
        let tol = 6.0 * (alpha * (1.0 - alpha) / n as f64).sqrt() + 2e-3;

        let mut rng = engine_rng(seed);
        let mut skip = GeometricSkip::new(alpha, &mut rng);
        let skip_drops = (0..n).filter(|_| skip.should_drop(&mut rng)).count();
        let skip_rate = skip_drops as f64 / n as f64;

        let mut rng = engine_rng(seed ^ 0x5eed_cafe);
        let bern_drops = (0..n).filter(|_| rng.gen::<f64>() < alpha).count();
        let bern_rate = bern_drops as f64 / n as f64;

        prop_assert!(
            (skip_rate - alpha).abs() < tol,
            "skip rate {skip_rate} vs alpha {alpha} (tol {tol})"
        );
        prop_assert!(
            (skip_rate - bern_rate).abs() < 2.0 * tol,
            "skip rate {skip_rate} vs bernoulli rate {bern_rate} (tol {tol})"
        );
    }

    /// Same seed ⇒ bit-identical `RunReport`, with both the entry shedder
    /// (geometric skip) and in-network shedding (partial Fisher–Yates)
    /// exercised. This is the determinism contract the batched executor
    /// and all fast paths must preserve.
    #[test]
    fn same_seed_same_run_report(seed in 0u64..500, alpha in 0.0f64..0.6) {
        use streamshed_engine::hook::{Decision, PeriodSnapshot};
        use streamshed_engine::networks::identification_network;
        use streamshed_engine::sim::{SimConfig, Simulator};
        use streamshed_engine::time::{secs, SimTime};

        let arrivals: Vec<SimTime> =
            (0..3000).map(|i| SimTime(i * 2_000)).collect(); // 500 t/s for 6 s
        let run = || {
            let mut cfg = SimConfig::paper_default();
            cfg.seed = seed;
            let sim = Simulator::new(identification_network(), cfg);
            // Alternate entry shedding and in-network shedding so both
            // RNG-driven paths run.
            let mut flip = false;
            let mut hook = |_: &PeriodSnapshot| {
                flip = !flip;
                if flip {
                    Decision::entry(alpha)
                } else {
                    Decision::network(400.0)
                }
            };
            sim.run(&arrivals, &mut hook, secs(6))
        };
        let a = run();
        let b = run();
        // Compare the rendered reports: periods with no departures carry
        // `arrival_mean_delay_ms: NaN`, and NaN ≠ NaN under `PartialEq`
        // even when the runs are bit-identical.
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// SimTime arithmetic: associativity and ordering.
    #[test]
    fn time_arithmetic(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let t = SimTime(a);
        let d1 = SimDuration(b);
        let d2 = SimDuration(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        prop_assert!((t + d1) >= t);
        prop_assert_eq!((t + d1) - t, d1);
        // Millis/micros conversions round-trip.
        prop_assert_eq!(millis(b / 1000).as_micros(), (b / 1000) * 1000);
    }
}
