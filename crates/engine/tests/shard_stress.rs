//! Multi-thread stress tests for the real-time data planes.
//!
//! The point is the *accounting invariant*: under every interleaving of
//! concurrent `offer()` calls, worker panic-restarts, hybrid entry
//! shedding (including α changes that force skip-counter resamples),
//! in-queue shedding, `close()`, and `shutdown()`, every offered tuple
//! lands in exactly one outcome bucket:
//!
//! ```text
//! offered == dropped_entry + rejected_at_capacity + rejected_closed + dispatched
//! dispatched == completed + dropped_shed + worker_panics
//! ```
//!
//! Nothing here asserts timing — only conservation.

use std::time::Duration;

use streamshed_engine::hook::{Decision, PeriodSnapshot};
use streamshed_engine::rt::{RtConfig, RtEngine};
use streamshed_engine::shard::{Dispatch, ShardConfig, ShardedEngine};
use streamshed_engine::worker::CostModel;

const OFFER_THREADS: usize = 4;
const OFFERS_PER_THREAD: usize = 400;

fn stress_cfg(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        cost: Duration::from_micros(20),
        period: Duration::from_millis(5),
        target_delay: Duration::from_millis(50),
        headroom: 1.0,
        queue_capacity: 512,
        panic_on_tuple: None,
        cost_model: CostModel::Sleep,
        dispatch: Dispatch::RoundRobin,
        seed: ShardConfig::DEFAULT_SEED,
        pin_cores: false,
        sample_every: streamshed_engine::spans::DEFAULT_SAMPLE_EVERY,
    }
}

/// A hook that churns the actuation every period: α toggles across the
/// hybrid shedder's Bernoulli/skip threshold (forcing skip resamples)
/// and every fourth period commands some in-queue shedding.
fn churn_hook() -> impl FnMut(&PeriodSnapshot) -> Decision {
    |snap: &PeriodSnapshot| {
        let alpha = match snap.k % 3 {
            0 => 0.01, // geometric-skip branch
            1 => 0.3,  // Bernoulli branch
            _ => 0.0,  // shedder off
        };
        if snap.k % 4 == 3 {
            Decision {
                shed_load_us: 2_000.0,
                ..Decision::entry(alpha)
            }
        } else {
            Decision::entry(alpha)
        }
    }
}

fn assert_sharded_balance(report: &streamshed_engine::shard::ShardReport) {
    let dispatched: u64 = report.per_shard.iter().map(|s| s.dispatched).sum();
    assert_eq!(
        report.offered,
        report.dropped_entry + report.rejected_at_capacity + report.rejected_closed + dispatched,
        "front-door conservation: {report:?}"
    );
    assert_eq!(
        dispatched,
        report.completed + report.dropped_shed + report.worker_panics,
        "shard conservation: {report:?}"
    );
    assert!(report.counters_balance(), "{report:?}");
}

#[test]
fn sharded_offers_race_panics_and_close() {
    // Several interleavings: close fires at a different point each round.
    for round in 0..6u64 {
        let mut cfg = stress_cfg(3);
        cfg.panic_on_tuple = Some(7 + round); // every shard panics once
        let engine = ShardedEngine::spawn_recorded(cfg, churn_hook(), None);

        std::thread::scope(|s| {
            for t in 0..OFFER_THREADS {
                let engine = &engine;
                s.spawn(move || {
                    for i in 0..OFFERS_PER_THREAD {
                        if t % 2 == 0 {
                            engine.offer();
                        } else {
                            engine.offer_keyed((t * OFFERS_PER_THREAD + i) as u64);
                        }
                        if i % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            // Close the front door mid-flight, at a round-dependent point.
            let engine = &engine;
            s.spawn(move || {
                std::thread::sleep(Duration::from_micros(300 * (round + 1)));
                engine.close();
            });
        });

        // The scope guarantees close() has returned: from here on every
        // offer must be rejected_closed, deterministically.
        for _ in 0..50 {
            assert!(!engine.offer(), "offer after close must be rejected");
        }

        let report = engine.shutdown();
        assert_eq!(
            report.offered,
            (OFFER_THREADS * OFFERS_PER_THREAD + 50) as u64,
            "every offer() call is counted exactly once"
        );
        assert_sharded_balance(&report);
        assert!(
            report.rejected_closed >= 50,
            "round {round}: the post-close offers are all rejections"
        );
    }
}

#[test]
fn sharded_heavy_shedding_still_balances() {
    // Saturate tiny queues so capacity rejections join the mix.
    let mut cfg = stress_cfg(2);
    cfg.queue_capacity = 16;
    cfg.cost = Duration::from_micros(200);
    let engine = ShardedEngine::spawn(cfg, |_s: &PeriodSnapshot| Decision::entry(0.2));
    std::thread::scope(|s| {
        for _ in 0..OFFER_THREADS {
            let engine = &engine;
            s.spawn(move || {
                for _ in 0..OFFERS_PER_THREAD {
                    engine.offer();
                }
            });
        }
    });
    let report = engine.shutdown();
    assert_eq!(report.offered, (OFFER_THREADS * OFFERS_PER_THREAD) as u64);
    assert!(
        report.rejected_at_capacity > 0,
        "tiny queues must reject under burst: {report:?}"
    );
    assert_sharded_balance(&report);
}

#[test]
fn sharded_shutdown_races_offers_from_scope_exit() {
    // close() called concurrently with offers, immediately followed by
    // shutdown — the tightest interleaving window.
    for _ in 0..4 {
        let engine = ShardedEngine::spawn(stress_cfg(2), churn_hook());
        std::thread::scope(|s| {
            for _ in 0..OFFER_THREADS {
                let engine = &engine;
                s.spawn(move || {
                    for _ in 0..OFFERS_PER_THREAD {
                        engine.offer();
                    }
                });
            }
            let engine = &engine;
            s.spawn(move || engine.close());
        });
        let report = engine.shutdown();
        assert_eq!(report.offered, (OFFER_THREADS * OFFERS_PER_THREAD) as u64);
        assert_sharded_balance(&report);
    }
}

#[test]
fn rt_engine_concurrent_offers_balance_with_panic() {
    // The single-worker engine under the same regime: concurrent offers,
    // an injected panic-restart, hybrid shedding churn.
    for _ in 0..4 {
        let cfg = RtConfig {
            cost: Duration::from_micros(20),
            period: Duration::from_millis(5),
            target_delay: Duration::from_millis(50),
            headroom: 1.0,
            queue_capacity: 2048,
            panic_on_tuple: Some(50),
            sample_every: streamshed_engine::spans::DEFAULT_SAMPLE_EVERY,
        };
        let engine = RtEngine::spawn(cfg, churn_hook());
        std::thread::scope(|s| {
            for _ in 0..OFFER_THREADS {
                let engine = &engine;
                s.spawn(move || {
                    for i in 0..OFFERS_PER_THREAD {
                        engine.offer();
                        if i % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        // Let the queue drain so the conservation equation closes.
        while engine.queue_len() > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = engine.shutdown();
        assert_eq!(report.offered, (OFFER_THREADS * OFFERS_PER_THREAD) as u64);
        assert_eq!(report.worker_panics, 1, "exactly the injected panic");
        let admitted = report.offered
            - report.dropped_entry
            - report.rejected_at_capacity
            - report.rejected_closed;
        assert_eq!(
            admitted,
            report.completed + report.dropped_shed + report.worker_panics,
            "rt conservation: {report:?}"
        );
        assert_eq!(report.rejected_closed, 0, "no close race in this test");
    }
}
