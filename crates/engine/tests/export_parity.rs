//! Property tests pinning the two trace exporters to each other.
//!
//! A [`ControlTrace`] must mean the same thing whether it was exported
//! as JSONL or CSV: every CSV cell has to agree with the corresponding
//! JSON field (modulo the JSONL exporter's 9-decimal float trimming and
//! its NaN-as-null convention), and both exporters have to cover every
//! struct field. The latter is enforced against the serde `Serialize`
//! derive, so adding a field to `ControlTrace` without teaching both
//! hand-rolled exporters about it fails here instead of silently
//! producing truncated exports.

use std::collections::BTreeSet;

use proptest::prelude::*;
use serde_json::Value;
use streamshed_engine::telemetry::{
    export_csv, export_jsonl, ControlTrace, LoopMode, MAX_TRACE_SHARDS,
};

/// A float field that may legitimately be "absent" (the exporters render
/// non-finite values as `null` in JSONL and via `Display` in CSV). The
/// arms are drawn uniformly, so non-finite values show up often.
fn sensor_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-1.0e6f64..1.0e6),
        (-1.0f64..1.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

fn arb_mode() -> impl Strategy<Value = LoopMode> {
    prop_oneof![
        Just(LoopMode::Direct),
        Just(LoopMode::Engaged),
        Just(LoopMode::Hold),
        Just(LoopMode::Fallback),
    ]
}

/// Generates a fully populated trace, including non-finite sensor
/// fields and shard counts both below and above [`MAX_TRACE_SHARDS`].
fn arb_trace() -> impl Strategy<Value = ControlTrace> {
    let loads = (
        (0u64..u64::from(u32::MAX)),                          // k
        (0.0f64..1.0e7),                                      // time_s
        (1.0e-3f64..10.0),                                    // period_s
        proptest::collection::vec(0u64..1_000_000u64, 8..=8), // counters
        (0.0f64..1.0e9),                                      // queued_load_us
        sensor_f64(),                                         // measured_cost_us
    );
    let signals = (
        sensor_f64(),    // mean_delay_ms
        (0.0f64..=1.0),  // alpha
        (0.0f64..1.0e9), // shed_load_us
        sensor_f64(),    // y_hat_s
        sensor_f64(),    // error_s
        sensor_f64(),    // u_tps
    );
    let rest = (
        sensor_f64(), // cost_est_us
        arb_mode(),
        (0u16..=u16::MAX),                                     // fault_flags
        (0u64..4_000_000_000),                                 // hook_ns
        proptest::collection::vec(0u64..1_000_000u64, 0..=12), // shard queues
    );
    let adapt = (
        sensor_f64(),         // adapt_cost_us
        (0u64..1_000),        // adapt_generation
        (0u64..1_000),        // adapt_swaps
        (-1i64..8),           // adapt_arm
    );
    (loads, signals, rest, adapt).prop_map(
        |(
            (k, time_s, period_s, counts, queued_load_us, measured_cost_us),
            (mean_delay_ms, alpha, shed_load_us, y_hat_s, error_s, u_tps),
            (cost_est_us, mode, fault_flags, hook_ns, queues),
            (adapt_cost_us, adapt_generation, adapt_swaps, adapt_arm),
        )| {
            let base = ControlTrace {
                k,
                time_s,
                period_s,
                offered: counts[0],
                admitted: counts[1],
                dropped_entry: counts[2],
                dropped_network: counts[3],
                completed: counts[4],
                outstanding: counts[5],
                queued_tuples: counts[6],
                queued_load_us,
                measured_cost_us,
                mean_delay_ms,
                cpu_busy_us: counts[7],
                alpha,
                shed_load_us,
                y_hat_s,
                error_s,
                u_tps,
                cost_est_us,
                mode,
                fault_flags,
                hook_ns,
                adapt_cost_us,
                adapt_generation,
                adapt_swaps,
                adapt_arm,
                shards: 0,
                shard_queues: [0; MAX_TRACE_SHARDS],
            };
            base.with_shard_queues(&queues)
        },
    )
}

/// Asserts one trace's CSV row agrees with its JSONL object, column by
/// column.
fn assert_row_parity(t: &ControlTrace, jsonl_line: &str, csv_row: &str) {
    let json: Value = serde_json::from_str(jsonl_line)
        .unwrap_or_else(|e| panic!("JSONL line is not valid JSON ({e}): {jsonl_line}"));
    let Value::Object(obj) = &json else {
        panic!("JSONL line is not an object: {jsonl_line}")
    };
    let cols: Vec<&str> = ControlTrace::csv_header().split(',').collect();
    let cells: Vec<&str> = csv_row.split(',').collect();
    assert_eq!(cells.len(), cols.len(), "CSV row width matches header");

    let Value::Array(shard_arr) = &obj["shard_queues"] else {
        panic!("shard_queues is not an array: {jsonl_line}")
    };
    assert_eq!(
        shard_arr.len(),
        (t.shards as usize).min(MAX_TRACE_SHARDS),
        "JSONL keeps exactly the populated shard slots"
    );

    for (col, cell) in cols.iter().zip(&cells) {
        if let Some(idx) = col.strip_prefix("shard_q") {
            // Flattened columns: slots past the true shard count are
            // implied 0 in JSONL and must be literal 0 in CSV.
            let i: usize = idx.parse().expect("shard_qN suffix");
            let from_json = shard_arr.get(i).and_then(Value::as_f64).unwrap_or(0.0);
            let from_csv: f64 = cell.parse().unwrap_or_else(|_| panic!("{col}: {cell}"));
            // Queue lengths are small integers, exactly representable.
            assert_eq!(from_csv, from_json, "column {col}");
            continue;
        }
        match &obj[*col] {
            Value::Null => {
                let f: f64 = cell.parse().unwrap_or_else(|_| panic!("{col}: {cell}"));
                assert!(!f.is_finite(), "column {col}: JSONL null but CSV {cell}");
            }
            Value::String(s) => assert_eq!(s, cell, "column {col}"),
            Value::Number(a) => {
                let b: f64 = cell.parse().unwrap_or_else(|_| panic!("{col}: {cell}"));
                // JSONL trims floats to 9 decimal places; CSV prints the
                // full `Display` form.
                let tol = 1e-8f64.max(1e-9 * b.abs());
                assert!((a - b).abs() <= tol, "column {col}: JSONL {a} vs CSV {b}");
            }
            other => panic!("column {col}: unexpected JSON value {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jsonl_and_csv_exports_agree_field_by_field(t in arb_trace()) {
        assert_row_parity(&t, &t.to_jsonl(), &t.to_csv_row());
    }

    #[test]
    fn batch_exporters_agree_line_by_line(
        traces in proptest::collection::vec(arb_trace(), 0..8),
    ) {
        let jsonl = export_jsonl(&traces);
        let csv = export_csv(&traces);
        let jsonl_lines: Vec<&str> = jsonl.lines().collect();
        let csv_lines: Vec<&str> = csv.lines().collect();
        prop_assert_eq!(jsonl_lines.len(), traces.len());
        prop_assert_eq!(csv_lines.len(), traces.len() + 1, "CSV carries a header row");
        prop_assert_eq!(csv_lines[0], ControlTrace::csv_header());
        for (i, t) in traces.iter().enumerate() {
            assert_row_parity(t, jsonl_lines[i], csv_lines[i + 1]);
        }
    }
}

/// Extracts the top-level field names from a struct's derived `Debug`
/// output (`Name { a: .., b: .. }`). The `Debug` derive reflects every
/// struct field, which makes it a dependency-free drift detector for the
/// hand-rolled exporters.
fn debug_field_names(dbg: &str) -> BTreeSet<String> {
    let open = dbg.find('{').expect("struct Debug output");
    let close = dbg.rfind('}').expect("struct Debug output");
    let body = &dbg[open + 1..close];
    let mut depth = 0usize;
    let mut names = BTreeSet::new();
    let mut token = String::new();
    for ch in body.chars() {
        match ch {
            '{' | '[' | '(' => {
                depth += 1;
                token.clear();
            }
            '}' | ']' | ')' => {
                depth -= 1;
                token.clear();
            }
            ':' if depth == 0 => {
                let name = token.trim();
                if !name.is_empty() {
                    names.insert(name.to_string());
                }
                token.clear();
            }
            ',' => token.clear(),
            c => token.push(c),
        }
    }
    names
}

/// Guards the hand-rolled exporters against `ControlTrace` drifting: the
/// `Debug` derive sees every struct field, so its field set must match
/// both the JSONL object keys and the CSV header columns (with
/// `shard_q0..7` standing in for the `shard_queues` array).
#[test]
fn csv_header_and_jsonl_cover_every_struct_field() {
    let t = ControlTrace {
        k: 7,
        time_s: 1.25,
        period_s: 1.0,
        offered: 10,
        admitted: 8,
        dropped_entry: 2,
        dropped_network: 1,
        completed: 6,
        outstanding: 3,
        queued_tuples: 4,
        queued_load_us: 500.0,
        measured_cost_us: 12.5,
        mean_delay_ms: 40.0,
        cpu_busy_us: 900,
        alpha: 0.25,
        shed_load_us: 0.0,
        y_hat_s: 0.04,
        error_s: -0.01,
        u_tps: 180.0,
        cost_est_us: 13.0,
        mode: LoopMode::Engaged,
        fault_flags: 0,
        hook_ns: 321,
        adapt_cost_us: 10_210.5,
        adapt_generation: 2,
        adapt_swaps: 3,
        adapt_arm: 1,
        shards: 0,
        shard_queues: [0; MAX_TRACE_SHARDS],
    }
    .with_shard_queues(&[5, 4, 3, 2, 1, 6, 7, 8]);

    let derived_keys = debug_field_names(&format!("{t:?}"));

    let jsonl: Value = serde_json::from_str(&t.to_jsonl()).expect("to_jsonl is valid JSON");
    let Value::Object(map) = &jsonl else { panic!("JSONL line is not an object") };
    let jsonl_keys: BTreeSet<String> = map.keys().cloned().collect();
    assert_eq!(
        derived_keys, jsonl_keys,
        "to_jsonl must export exactly the fields of ControlTrace — \
         update the exporter (and csv_header/to_csv_row) after changing the struct"
    );

    let header_keys: BTreeSet<String> = ControlTrace::csv_header()
        .split(',')
        .map(|c| {
            if c.starts_with("shard_q") { "shard_queues".to_string() } else { c.to_string() }
        })
        .collect();
    assert_eq!(
        header_keys, jsonl_keys,
        "csv_header must flatten exactly the fields of ControlTrace"
    );

    let flattened = ControlTrace::csv_header()
        .split(',')
        .filter(|c| c.starts_with("shard_q"))
        .count();
    assert_eq!(flattened, MAX_TRACE_SHARDS, "one CSV column per retained shard slot");
}
