//! Workspace-level integration tests: the full stack (workload → engine →
//! control) exercised through the public `streamshed` facade.

use streamshed::prelude::*;

fn arrivals_of(trace: &dyn ArrivalTrace, dur_s: f64) -> Vec<SimTime> {
    to_micros(&trace.arrival_times(dur_s))
        .into_iter()
        .map(SimTime)
        .collect()
}

#[test]
fn facade_reexports_compose() {
    // Design a controller with zdomain, wrap it in a strategy, drive the
    // engine with a workload — all through the prelude.
    let params = design_for_integrator(&DesignSpec::paper_default());
    assert!((params.b0 - 0.4).abs() < 1e-12);

    let cfg = LoopConfig::paper_default().with_controller(params);
    let mut strategy = CtrlStrategy::from_config(&cfg);
    let arrivals = arrivals_of(&StepTrace::constant(300.0), 60.0);
    let sim = Simulator::new(identification_network(), SimConfig::paper_default());
    let report = sim.run(&arrivals, &mut strategy, secs(60));
    assert!(report.completed > 5000);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let trace = ParetoTrace::builder().mean_rate(250.0).seed(5).build();
        let arrivals = arrivals_of(&trace, 60.0);
        let mut s = CtrlStrategy::from_config(&LoopConfig::paper_default());
        let sim = Simulator::new(identification_network(), SimConfig::paper_default());
        let r = sim.run(&arrivals, &mut s, secs(60));
        (
            r.completed,
            r.dropped_entry,
            r.accumulated_violation_ms,
            r.delay_stats().mean_ms(),
        )
    };
    assert_eq!(run(), run(), "virtual-time runs must be bit-reproducible");
}

#[test]
fn custom_network_with_all_operator_kinds() {
    use streamshed::engine::operator::{
        AggFunc, Aggregate, Filter, Map, Split, Union, WindowJoin, WindowSpec,
    };
    let mut b = NetworkBuilder::new();
    let f = b.add("f", micros(100), Filter::value_below(0.9));
    let m = b.add("m", micros(100), Map::scale(2.0));
    let sp = b.add("sp", micros(50), Split::value_below(0.5));
    let g = b.add("g", micros(100), Map::identity());
    let h = b.add("h", micros(100), Map::identity());
    let u = b.add("u", micros(50), Union);
    let j = b.add(
        "j",
        micros(200),
        WindowJoin::new(WindowSpec::Count(16), 0.2),
    );
    let src2 = b.add("src2", micros(100), Filter::value_below(0.9));
    let agg = b.add("agg", micros(100), Aggregate::new(3, AggFunc::Max));
    b.entry(f);
    b.entry(src2);
    b.connect(f, m);
    b.connect(m, sp);
    b.connect_port(sp, 0, g, 0);
    b.connect_port(sp, 1, h, 0);
    b.connect_port(g, 0, u, 0);
    b.connect_port(h, 0, u, 1);
    b.connect_port(u, 0, j, 0);
    b.connect_port(src2, 0, j, 1);
    b.connect(j, agg);
    let net = b.build().expect("valid network");

    let arrivals = arrivals_of(&StepTrace::constant(500.0), 20.0);
    let sim = Simulator::new(net, SimConfig::paper_default().with_seed(3));
    let report = sim.run(&arrivals, &mut NoShedding, secs(20));
    assert_eq!(report.offered, 10_000);
    assert!(report.completed > 0);
    // Conservation: everything offered is accounted for.
    let outstanding = report.periods.last().unwrap().outstanding;
    assert_eq!(report.offered, report.completed + outstanding);
}

#[test]
fn shedding_strategies_keep_loss_proportional_to_overload() {
    // Offered 2× capacity: in the long run any stable strategy must shed
    // about half.
    for kind in ["ctrl", "baseline"] {
        let arrivals = arrivals_of(&StepTrace::constant(380.0), 150.0);
        let cfg = LoopConfig::paper_default();
        let sim = Simulator::new(identification_network(), SimConfig::paper_default());
        let report = match kind {
            "ctrl" => {
                let mut s = CtrlStrategy::from_config(&cfg);
                sim.run(&arrivals, &mut s, secs(150))
            }
            _ => {
                let mut s = BaselineStrategy::from_config(&cfg);
                sim.run(&arrivals, &mut s, secs(150))
            }
        };
        let expected = 1.0 - 190.0 / 380.0;
        assert!(
            (report.loss_ratio() - expected).abs() < 0.07,
            "{kind}: loss {} vs expected {expected}",
            report.loss_ratio()
        );
    }
}

#[test]
fn model_predicts_engine_behaviour() {
    // The PlantModel's capacity and delay predictions must match what the
    // engine actually does — the crux of §4.2.
    let model = PlantModel::new(0.97 / 190.0 * 1e6, 0.97, secs(1));
    assert!((model.capacity_tps() - 190.0).abs() < 1e-6);

    // Drive the engine to a known queue length with CTRL and compare the
    // measured delay against the model's prediction.
    let arrivals = arrivals_of(&StepTrace::constant(300.0), 100.0);
    let mut s = CtrlStrategy::from_config(&LoopConfig::paper_default());
    let sim = Simulator::new(identification_network(), SimConfig::paper_default());
    let report = sim.run(&arrivals, &mut s, secs(100));
    let q_tail: f64 = report.periods[40..]
        .iter()
        .map(|p| p.outstanding as f64)
        .sum::<f64>()
        / 60.0;
    let predicted_ms = model.predict_delay_s(q_tail.round() as u64) * 1e3;
    let measured_ms = report.delay_stats().mean_ms();
    assert!(
        (predicted_ms - measured_ms).abs() < 0.35 * measured_ms,
        "model {predicted_ms} ms vs engine {measured_ms} ms"
    );
}

#[test]
fn sysid_pipeline_recovers_engine_parameters() {
    // knee → naive cost → headroom fit: the full §4.2 identification
    // pipeline, end to end.
    let cfg = SimConfig::paper_default();
    let knee = streamshed::sysid::find_capacity_knee(
        identification_network,
        130.0,
        260.0,
        5.0,
        20,
        &cfg,
    );
    assert!((knee.capacity_tps - 190.0).abs() < 12.0);

    let run = streamshed::sysid::run_identification(
        identification_network(),
        &StepTrace::paper_step(300.0),
        60,
        150,
        cfg,
    );
    let fit = streamshed::sysid::fit_headroom(&run, run.mean_cost_us, &[0.95, 0.97, 1.0]);
    assert!((fit.best_headroom - 0.97).abs() < 0.021);
}
