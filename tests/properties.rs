//! Property-based tests over the full simulator: invariants that must
//! hold for any workload, seed, and shedding policy.

use proptest::prelude::*;
use streamshed::prelude::*;

/// Arbitrary small workloads: (rate regimes, seed, alpha).
fn arrivals(rates: &[f64], dur_s: f64) -> Vec<SimTime> {
    let steps: Vec<(f64, f64)> = rates
        .iter()
        .enumerate()
        .map(|(i, &r)| (i as f64 * dur_s / rates.len() as f64, r))
        .collect();
    let trace = StepTrace::from_steps(steps);
    to_micros(&trace.arrival_times(dur_s))
        .into_iter()
        .map(SimTime)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// offered = dropped_entry + dropped_network + completed + outstanding.
    #[test]
    fn tuple_conservation(
        rates in prop::collection::vec(10.0..600.0f64, 1..4),
        seed in 0u64..1000,
        alpha in 0.0..0.9f64,
    ) {
        let arr = arrivals(&rates, 12.0);
        let sim = Simulator::new(
            identification_network(),
            SimConfig::paper_default().with_seed(seed),
        );
        let mut hook = |_s: &PeriodSnapshot| Decision::entry(alpha);
        let report = sim.run(&arr, &mut hook, secs(12));
        let outstanding = report.periods.last().unwrap().outstanding;
        prop_assert_eq!(
            report.offered,
            report.dropped_entry + report.dropped_network + report.completed + outstanding
        );
        prop_assert!(report.loss_ratio() >= 0.0 && report.loss_ratio() <= 1.0);
    }

    /// Delays are never negative, and the violation accounting is
    /// internally consistent.
    #[test]
    fn violation_accounting_consistent(
        rate in 50.0..500.0f64,
        seed in 0u64..1000,
    ) {
        let arr = arrivals(&[rate], 10.0);
        let sim = Simulator::new(
            identification_network(),
            SimConfig::paper_default().with_seed(seed),
        );
        let report = sim.run(&arr, &mut NoShedding, secs(10));
        prop_assert!(report.delay_stats().mean_ms() >= 0.0);
        prop_assert!(report.max_overshoot_ms >= 0.0);
        if report.delayed_tuples == 0 {
            prop_assert_eq!(report.accumulated_violation_ms, 0.0);
            prop_assert_eq!(report.max_overshoot_ms, 0.0);
        } else {
            prop_assert!(report.accumulated_violation_ms > 0.0);
            // Mean violation cannot exceed the max.
            let mean_viol =
                report.accumulated_violation_ms / report.delayed_tuples as f64;
            prop_assert!(mean_viol <= report.max_overshoot_ms + 1e-9);
        }
    }

    /// Higher entry-drop probability never *increases* completed work.
    #[test]
    fn monotone_shedding(
        seed in 0u64..200,
    ) {
        let arr = arrivals(&[400.0], 10.0);
        let run = |alpha: f64| {
            let sim = Simulator::new(
                identification_network(),
                SimConfig::paper_default().with_seed(seed),
            );
            let mut hook = move |_s: &PeriodSnapshot| Decision::entry(alpha);
            sim.run(&arr, &mut hook, secs(10))
        };
        let light = run(0.1);
        let heavy = run(0.8);
        prop_assert!(heavy.dropped_entry > light.dropped_entry);
        prop_assert!(
            heavy.periods.last().unwrap().outstanding
                <= light.periods.last().unwrap().outstanding
        );
    }

    /// The CTRL strategy never emits an out-of-range drop probability and
    /// never panics, whatever the snapshot contents.
    #[test]
    fn ctrl_decision_always_valid(
        outstanding in 0u64..100_000,
        offered in 0u64..10_000,
        completed in 0u64..10_000,
        cost in prop::option::of(1.0..100_000.0f64),
        k in 0u64..500,
    ) {
        let mut s = CtrlStrategy::from_config(&LoopConfig::paper_default());
        let snap = PeriodSnapshot {
            k,
            now: SimTime::ZERO + secs(k + 1),
            period: secs(1),
            offered,
            admitted: offered,
            dropped_entry: 0,
            dropped_network: 0,
            completed,
            outstanding,
            queued_tuples: outstanding,
            queued_load_us: outstanding as f64 * 5000.0,
            measured_cost_us: cost,
            mean_delay_ms: None,
            cpu_busy_us: 0,
        };
        let d = s.on_period(&snap);
        prop_assert!((0.0..=1.0).contains(&d.entry_drop_prob));
        prop_assert!(d.shed_load_us >= 0.0);
        prop_assert!(d.shed_load_us.is_finite());
    }

    /// The supervised strategy emits a valid actuator command no matter
    /// how broken the feedback signals are — NaN/∞/negative costs and
    /// delays, including long runs of missing measurements.
    #[test]
    fn supervisor_output_always_valid(
        costs in prop::collection::vec(
            prop::option::of(prop_oneof![
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
                Just(-50.0),
                Just(0.0),
                (1.0..100_000.0f64),
            ]),
            5..40,
        ),
        delays in prop::collection::vec(
            prop::option::of(prop_oneof![
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
                Just(-1000.0),
                (0.0..60_000.0f64),
            ]),
            5..40,
        ),
        queues in prop::collection::vec(0u64..50_000, 5..40),
    ) {
        let loop_cfg = LoopConfig::paper_default();
        let mut sup =
            Supervisor::from_loop(CtrlStrategy::from_config(&loop_cfg), &loop_cfg);
        let n = costs.len().min(delays.len()).min(queues.len());
        for k in 0..n {
            let q = queues[k];
            let snap = PeriodSnapshot {
                k: k as u64,
                now: SimTime::ZERO + secs(k as u64 + 1),
                period: secs(1),
                offered: 400,
                admitted: 400,
                dropped_entry: 0,
                dropped_network: 0,
                completed: 180,
                outstanding: q,
                queued_tuples: q,
                queued_load_us: q as f64 * 5263.0,
                measured_cost_us: costs[k],
                mean_delay_ms: delays[k],
                cpu_busy_us: 0,
            };
            let d = sup.on_period(&snap);
            prop_assert!(
                d.entry_drop_prob.is_finite()
                    && (0.0..=1.0).contains(&d.entry_drop_prob),
                "period {k}: alpha = {}",
                d.entry_drop_prob
            );
            prop_assert!(
                d.shed_load_us.is_finite() && d.shed_load_us >= 0.0,
                "period {k}: shed_load_us = {}",
                d.shed_load_us
            );
            if let Some(per) = &d.per_entry_drop_prob {
                for &p in per {
                    prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p));
                }
            }
        }
    }

    /// No sequence of garbage measurements (NaN, ±∞, zero, negative) can
    /// poison any cost tracker: the estimate stays finite, positive, and
    /// within the range spanned by the prior and the valid samples.
    #[test]
    fn cost_estimators_never_poisoned(
        samples in prop::collection::vec(
            prop::option::of(prop_oneof![
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
                Just(-1.0),
                Just(0.0),
                (1.0..1_000_000.0f64),
            ]),
            1..60,
        ),
        prior in 100.0..50_000.0f64,
    ) {
        let mut ewma = CostEstimator::new(prior, 0.3);
        let mut kalman = KalmanCostEstimator::with_defaults(prior);
        let mut lo = prior;
        let mut hi = prior;
        for &s in &samples {
            if let Some(v) = s {
                if v.is_finite() && v > 0.0 {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            for est in [ewma.update(s), kalman.update(s)] {
                prop_assert!(
                    est.is_finite() && est > 0.0,
                    "estimate poisoned by {s:?}: {est}"
                );
                // Both trackers interpolate between the prior and the
                // valid measurements; garbage must not drag them outside
                // that envelope.
                prop_assert!(est >= lo - 1e-6 && est <= hi + 1e-6);
            }
        }
    }

    /// Controller output is a continuous function of the error: small
    /// error perturbations produce proportionally small output changes.
    #[test]
    fn controller_lipschitz(
        e in -20.0..20.0f64,
        de in -0.01..0.01f64,
    ) {
        let mut a = FeedbackController::paper();
        let mut b = FeedbackController::paper();
        let u1 = a.compute(e, 5.105e-3, 1.0, 0.97);
        let u2 = b.compute(e + de, 5.105e-3, 1.0, 0.97);
        // Gain = H/(cT)·b0 ≈ 76 per unit error.
        prop_assert!((u2 - u1).abs() <= 100.0 * de.abs() + 1e-9);
    }
}
