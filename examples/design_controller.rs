//! Controller design walkthrough (Appendix A, executable).
//!
//! Re-derives the paper's controller from its specification, verifies the
//! closed-loop poles, damping, and static gain, and compares step
//! responses for alternative pole choices.
//!
//! ```text
//! cargo run --release --example design_controller
//! ```

use streamshed::prelude::*;
use streamshed::zdomain::analysis::{damping_of_pole, pole_for_convergence_periods};
use streamshed::zdomain::tf::StepMetrics;
use streamshed::zdomain::Complex;

fn main() {
    println!("=== Appendix A, step by step ===\n");

    // 1. Specification: converge in ~3 control periods with damping 1.
    let pole = pole_for_convergence_periods(3.0);
    println!("convergence in 3 periods → pole magnitude e^(-1/3) ≈ {pole:.4}");
    println!("the paper rounds this to 0.7 and places a double real pole:\n");
    println!("  desired CLCE: (z − 0.7)² = z² − 1.4z + 0.49\n");

    // 2. Solve the Diophantine matching (Eq. 18) + static gain (Eq. 19).
    let spec = DesignSpec::paper_default();
    let params = design_for_integrator(&spec);
    println!(
        "solved parameters: b0 = {}, b1 = {}, a = {}",
        params.b0, params.b1, params.a
    );
    println!("(the paper reports b0 = 0.4, b1 = −0.31, a = −0.8)\n");

    // 3. Verify the closed loop.
    let cl = params.closed_loop();
    println!("closed-loop poles:");
    for p in cl.poles() {
        let info = damping_of_pole(Complex::new(p.re, p.im));
        println!(
            "  z = {:.4}{:+.4}i  |z| = {:.4}  damping = {:.3}  τ = {:.2} periods",
            p.re, p.im, info.magnitude, info.damping, info.time_constant_periods
        );
    }
    println!("static gain: {:.6} (must be 1)\n", cl.dc_gain());

    // 4. Step responses for alternative pole placements.
    println!("step responses (fraction of target reached at period k):");
    println!("  k      p=0.5     p=0.7     p=0.9");
    let designs: Vec<_> = [0.5, 0.7, 0.9]
        .iter()
        .map(|&p| design_for_integrator(&DesignSpec::from_double_pole(p)).closed_loop())
        .collect();
    let responses: Vec<Vec<f64>> = designs.iter().map(|d| d.step_response(16)).collect();
    for (k, ((a, b), c)) in responses[0]
        .iter()
        .zip(&responses[1])
        .zip(&responses[2])
        .enumerate()
    {
        println!("  {k:2}   {a:7.3}   {b:7.3}   {c:7.3}");
    }
    for (p, r) in [0.5, 0.7, 0.9].iter().zip(&responses) {
        let m = StepMetrics::from_response(r);
        println!(
            "\npole {p}: overshoot {:.1}%, 63% rise at k = {:?}",
            m.overshoot * 100.0,
            m.rise_63_index
        );
    }
    println!(
        "\nfaster poles demand more shedding authority per period; \
         0.7 is the paper's balance."
    );

    // 5. The design's hidden redundancy (documented in DESIGN.md): the
    // static-gain condition holds for ANY b0, so one degree of freedom
    // remains.
    println!("\nredundancy check — static gain for several b0 choices:");
    for b0 in [0.2, 0.4, 0.8] {
        let p = design_for_integrator(&DesignSpec::paper_default().with_b0(b0));
        println!(
            "  b0 = {b0}: a = {:+.3}, b1 = {:+.3}, closed-loop gain = {:.6}",
            p.a,
            p.b1,
            p.static_gain()
        );
    }
}
