//! Sensor-grid scenario: time-varying processing costs.
//!
//! An environmental-monitoring deployment re-plans its query network at
//! runtime (new queries arrive, selectivities drift), so the per-tuple
//! cost wanders — the exact situation of the paper's Fig. 14/15. This
//! example shows the cost estimator tracking the true cost and the
//! controller re-converging after each change.
//!
//! ```text
//! cargo run --release --example sensor_grid
//! ```

use streamshed::prelude::*;
use streamshed::engine::cost::CostSchedule;

fn main() {
    let duration = 300u64;
    let base_ms = 5.105;

    // Fig. 14-style cost profile: peak @50 s, jump @125 s, terrace
    // 200–260 s.
    let cost = CostTrace::paper_fig14(base_ms, 99);
    let schedule = CostSchedule::from_points(
        cost.multiplier_points(duration as f64)
            .into_iter()
            .map(|(t, m)| (SimTime((t * 1e6) as u64), m))
            .collect(),
    );

    // Steady 250 t/s of sensor readings — overload whenever the cost
    // multiplier exceeds 190/250 ≈ 0.76× of nominal, i.e. almost always.
    let times = StepTrace::constant(250.0).arrival_times(duration as f64);
    let arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();

    let sim_cfg = SimConfig::paper_default().with_cost_schedule(schedule);
    let mut ctrl = CtrlStrategy::from_config(&LoopConfig::paper_default());
    let sim = Simulator::new(identification_network(), sim_cfg);
    let report = sim.run(&arrivals, &mut ctrl, secs(duration));

    println!("time(s)  true-cost(ms)  est-cost(ms)  y-est(s)  shed(%)");
    let truth = cost.points_ms(duration as f64);
    for row in ctrl.signals().iter().step_by(15) {
        let k = row.k as usize;
        println!(
            "{:6}  {:12.2}  {:11.2}  {:7.2}  {:6.1}",
            k,
            truth[k.min(truth.len() - 1)].1,
            row.cost_us / 1e3,
            row.y_hat_s,
            row.alpha * 100.0
        );
    }

    println!("\n--- totals over {duration} s ---");
    println!("  mean delay      : {:.0} ms (target 2000 ms)", report.delay_stats().mean_ms());
    println!("  delayed tuples  : {}", report.delayed_tuples);
    println!("  max overshoot   : {:.0} ms", report.max_overshoot_ms);
    println!("  data loss       : {:.1} %", report.loss_ratio() * 100.0);

    // The estimator must have tracked the big cost jump.
    let est_at_peak = ctrl
        .signals()
        .iter()
        .filter(|s| (130..140).contains(&(s.k as usize)))
        .map(|s| s.cost_us / 1e3)
        .fold(0.0f64, f64::max);
    println!(
        "\ncost estimate near the 125 s jump peaked at {est_at_peak:.1} ms \
         (true peak ≈ {:.1} ms)",
        truth[126].1
    );
    assert!(
        est_at_peak > base_ms * 2.0,
        "estimator must have followed the jump"
    );
}
