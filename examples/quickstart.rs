//! Quickstart: feedback-control load shedding in ~40 lines.
//!
//! Runs the paper's identification network under a 2× overload, once with
//! no shedding and once under the CTRL strategy, and prints the paper's
//! four quality metrics for both.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use streamshed::prelude::*;

fn main() {
    let duration_s = 120.0;
    let target_ms = 2000.0;

    // A bursty Pareto stream at ~380 t/s — 2× the 190 t/s capacity.
    let trace = ParetoTrace::builder()
        .mean_rate(380.0)
        .bias(1.0)
        .seed(7)
        .build();
    let arrivals: Vec<SimTime> = to_micros(&trace.arrival_times(duration_s))
        .into_iter()
        .map(SimTime)
        .collect();

    println!("workload: {} tuples over {duration_s} s (capacity 190 t/s)", arrivals.len());
    println!("target delay: {target_ms} ms\n");

    // 1. No shedding: the queue — and the delays — grow without bound.
    let sim = Simulator::new(identification_network(), SimConfig::paper_default());
    let open = sim.run(&arrivals, &mut NoShedding, secs(duration_s as u64));

    // 2. The paper's feedback controller.
    let mut ctrl = CtrlStrategy::from_config(&LoopConfig::paper_default());
    let sim = Simulator::new(identification_network(), SimConfig::paper_default());
    let closed = sim.run(&arrivals, &mut ctrl, secs(duration_s as u64));

    for (name, report) in [("no shedding", &open), ("CTRL", &closed)] {
        println!("--- {name} ---");
        println!("  mean delay        : {:>10.1} ms", report.delay_stats().mean_ms());
        println!("  p99 delay         : {:>10.1} ms", report.delay_stats().quantile_ms(0.99).unwrap_or(0.0));
        println!("  delay violations  : {:>10.1} tuple·s", report.accumulated_violation_ms / 1e3);
        println!("  delayed tuples    : {:>10}", report.delayed_tuples);
        println!("  max overshoot     : {:>10.1} ms", report.max_overshoot_ms);
        println!("  data loss         : {:>9.1} %", report.loss_ratio() * 100.0);
        println!();
    }

    let settled: Vec<_> = ctrl.signals().iter().skip(20).collect();
    let mean_yhat = settled.iter().map(|s| s.y_hat_s).sum::<f64>() / settled.len() as f64;
    println!(
        "CTRL steady state: estimated delay ŷ = {mean_yhat:.2} s (target 2.00 s), \
         mean shed factor α = {:.2}",
        settled.iter().map(|s| s.alpha).sum::<f64>() / settled.len() as f64
    );
}
