//! Stock-ticker scenario: firm deadlines under auction bursts.
//!
//! Quote and trade streams are correlated through a sliding-window join,
//! aggregated, and filtered for alerts. Quotes are worthless once stale
//! ("tracking of stock prices" is the paper's firm-deadline example), so
//! the delay target is tight: 500 ms. The market open and close produce
//! violent arrival bursts.
//!
//! Compares CTRL against the open-loop AURORA policy on the same input.
//!
//! ```text
//! cargo run --release --example stock_ticker
//! ```

use streamshed::prelude::*;
use streamshed::engine::operator::{AggFunc, Aggregate, Filter, WindowJoin, WindowSpec};
use streamshed::engine::time::{millis, secs_f64};

/// Quote/trade correlation network: join → window-avg → alert filter.
fn ticker_network() -> QueryNetwork {
    let mut b = NetworkBuilder::new();
    let quotes = b.add("quotes", micros(150), Filter::value_below(0.98));
    let trades = b.add("trades", micros(150), Filter::value_below(0.98));
    let join = b.add(
        "correlate",
        micros(800),
        WindowJoin::new(WindowSpec::Time(secs_f64(0.25)), 0.4),
    );
    let vwap = b.add("vwap", micros(300), Aggregate::new(4, AggFunc::Avg));
    let alert = b.add("alert", micros(200), Filter::value_below(0.25));
    b.entry(quotes);
    b.entry(trades);
    b.connect_port(quotes, 0, join, 0);
    b.connect_port(trades, 0, join, 1);
    b.connect(join, vwap);
    b.connect(vwap, alert);
    b.build().expect("valid ticker network")
}

fn main() {
    // Trading-day-in-miniature: open burst, lull, close burst.
    let trace = StepTrace::from_steps(vec![
        (0.0, 2500.0),  // opening auction
        (20.0, 900.0),  // midday
        (60.0, 3000.0), // closing auction
        (80.0, 600.0),  // after hours
    ]);
    let duration = 100u64;
    let times = trace.arrival_times(duration as f64);
    let arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();

    let capacity = ticker_network().expected_cost_per_tuple_us();
    println!(
        "ticker network: expected cost {capacity:.0} µs/tuple \
         (capacity ≈ {:.0} t/s); bursts reach 3000 t/s",
        0.97 / capacity * 1e6
    );

    let loop_cfg = LoopConfig::paper_default()
        .with_target_delay_ms(500.0)
        .with_period_ms(250.0)
        .with_prior_cost_us(capacity);
    let sim_cfg = SimConfig::paper_default()
        .with_period(millis(250))
        .with_target_delay(millis(500));

    for use_ctrl in [true, false] {
        let sim = Simulator::new(ticker_network(), sim_cfg.clone());
        let report = if use_ctrl {
            let mut s = CtrlStrategy::from_config(&loop_cfg);
            sim.run(&arrivals, &mut s, secs(duration))
        } else {
            let mut s = AuroraStrategy::from_config(&loop_cfg);
            sim.run(&arrivals, &mut s, secs(duration))
        };
        let name = if use_ctrl { "CTRL" } else { "AURORA" };
        println!("\n--- {name} ---");
        println!("  stale quotes (>500 ms): {:>8}", report.delayed_tuples);
        println!(
            "  staleness overrun     : {:>8.1} tuple·s",
            report.accumulated_violation_ms / 1e3
        );
        println!("  worst staleness       : {:>8.1} ms", report.max_overshoot_ms);
        println!("  quotes dropped        : {:>7.1} %", report.loss_ratio() * 100.0);
        println!(
            "  p50 / p99 delay       : {:>6.0} / {:.0} ms",
            report.delay_stats().quantile_ms(0.5).unwrap_or(0.0),
            report.delay_stats().quantile_ms(0.99).unwrap_or(0.0)
        );
    }
    println!(
        "\nCTRL keeps staleness pinned near the 500 ms budget through both \
         auctions;\nAURORA lets the opening-burst backlog linger."
    );
}
