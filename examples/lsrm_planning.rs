//! Where to shed: the Load Shedding Roadmap.
//!
//! The paper decides *when* and *how much* to shed and hands the *where*
//! to Aurora's LSRM. This example builds the roadmap for the paper's
//! 14-operator network, prints the location ranking, plans a shed of one
//! second of CPU load, and compares the plan's utility loss against a
//! location-blind baseline. It then runs the engine with the LSRM shed
//! policy end-to-end.
//!
//! ```text
//! cargo run --release --example lsrm_planning
//! ```

use streamshed::control::lsrm::Lsrm;
use streamshed::engine::describe;
use streamshed::engine::sim::ShedPolicy;
use streamshed::prelude::*;

fn main() {
    let net = identification_network();
    println!("{}", describe::describe(&net));

    let lsrm = Lsrm::build(&net);
    println!("LSRM ranking (best drop locations first):");
    println!("  node             load-saved(µs)   output-yield   ratio");
    for loc in lsrm.locations() {
        println!(
            "  op{:<2} {:<10} {:>12.0} {:>14.3} {:>9.0}",
            loc.node,
            net.nodes()[loc.node].name,
            loc.load_saved_us,
            loc.output_yield,
            loc.ratio
        );
    }

    // Plan: shed 1 s of CPU with 80 tuples queued everywhere.
    let available = vec![80u64; net.len()];
    let plan = lsrm.plan(1_000_000.0, &available);
    println!("\nplan for Ls = 1.0 s of load:");
    for (node, n) in &plan.drops {
        println!("  drop {n:>3} tuples before op{node} ({})", net.nodes()[*node].name);
    }
    println!(
        "  sheds {:.2} s of load, losing {:.1} expected query outputs",
        plan.load_shed_us / 1e6,
        plan.utility_loss
    );

    // End-to-end: CTRL in network mode with the LSRM victim policy.
    let times = StepTrace::constant(380.0).arrival_times(120.0);
    let arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();
    let cfg = LoopConfig::paper_default().with_shed_mode(ShedMode::Network);
    let mut strategy = CtrlStrategy::from_config(&cfg);
    let sim = Simulator::new(
        identification_network(),
        SimConfig::paper_default().with_shed_policy(ShedPolicy::LsrmRatio),
    );
    let report = sim.run(&arrivals, &mut strategy, secs(120));
    println!("\nend-to-end (CTRL + network shedding + LSRM policy, 2x overload):");
    print!("{}", report.render_summary());
}
