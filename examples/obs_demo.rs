//! Observability-plane demo: a live engine you can `curl`.
//!
//! Spawns the real-time engine under 2× overload with the paper's CTRL
//! strategy and the full observability plane attached, then serves its
//! own metrics for a fixed duration:
//!
//! ```text
//! cargo run --release --example obs_demo -- [port] [seconds]
//!
//! curl -s localhost:9184/metrics   # Prometheus exposition + diagnostics
//! curl -s localhost:9184/health    # classifier verdict (503 on Diverging)
//! curl -s localhost:9184/ready     # readiness (503 until the first period)
//! curl -s "localhost:9184/trace?last=5"   # newest control-loop records
//! curl -s "localhost:9184/trace?last=5&format=csv"  # same, as CSV
//! curl -s localhost:9184/profile   # per-stage latency shares + percentiles
//! ```
//!
//! Defaults: port 9184, 5 seconds. CI uses this binary as the endpoint
//! smoke test. Exits non-zero if the HTTP server fails to start.

use std::time::{Duration, Instant};
use streamshed::control::loop_::LoopConfig;
use streamshed::control::strategy::CtrlStrategy;
use streamshed::engine::obs::ObsOptions;
use streamshed::engine::rt::{RtConfig, RtEngine};

fn main() {
    let mut args = std::env::args().skip(1);
    let port: u16 = args.next().map_or(9184, |a| a.parse().expect("port must be a u16"));
    let seconds: u64 = args.next().map_or(5, |a| a.parse().expect("seconds must be an integer"));

    // 2 ms tuples, 100 ms control period, 200 ms delay target.
    let cfg = RtConfig::demo();
    let loop_cfg = LoopConfig::paper_default()
        .with_target_delay_ms(cfg.target_delay.as_secs_f64() * 1e3)
        .with_period_ms(cfg.period.as_secs_f64() * 1e3)
        .with_headroom(cfg.headroom)
        .with_prior_cost_us(cfg.cost.as_micros() as f64);
    let strategy = CtrlStrategy::from_config(&loop_cfg);

    let options = ObsOptions::for_target(cfg.target_delay)
        .with_http_addr(format!("127.0.0.1:{port}"))
        .with_flight_dir(std::env::temp_dir().join("streamshed_obs_demo_flight"));
    let engine = match RtEngine::spawn_observed(cfg, strategy, &options) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("failed to start the observability plane on port {port}: {e}");
            std::process::exit(1);
        }
    };
    let addr = engine.obs().and_then(|o| o.addr()).expect("HTTP server is live");
    println!("serving http://{addr}/metrics /health /ready /trace for {seconds} s");

    // 2× overload: ~1000 t/s against ~500 t/s capacity, paced in 5 ms
    // ticks, so the controller has real work to do.
    let run = Duration::from_secs(seconds);
    let tick = Duration::from_millis(5);
    let start = Instant::now();
    let mut next = start + tick;
    while start.elapsed() < run {
        for _ in 0..5 {
            engine.offer();
        }
        let now = Instant::now();
        if next > now {
            std::thread::sleep(next - now);
        }
        next += tick;
    }

    let health = engine
        .obs()
        .map(|o| o.plane.health())
        .expect("plane attached");
    let report = engine.shutdown();
    println!(
        "done: {} offered, {} completed, final classifier state: {}",
        report.offered,
        report.completed,
        health.state.as_str()
    );
}
