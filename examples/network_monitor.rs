//! Network-monitoring scenario on the **real-time** engine.
//!
//! An intrusion-detection pipeline must classify packet summaries within
//! a soft deadline; an attack burst triples the packet rate. The same
//! feedback controller that drives the simulator here controls a live,
//! threaded pipeline against the wall clock.
//!
//! ```text
//! cargo run --release --example network_monitor
//! ```
//! Runtime: ~4 seconds of wall-clock time.

use std::time::Duration;
use streamshed::control::strategy::{CtrlStrategy, SheddingStrategy};
use streamshed::control::LoopConfig;
use streamshed::engine::rt::{RtConfig, RtEngine};

fn main() {
    // 500 µs per packet summary, 50 ms control period, 100 ms deadline.
    let cfg = RtConfig {
        cost: Duration::from_micros(500),
        period: Duration::from_millis(50),
        target_delay: Duration::from_millis(100),
        headroom: 0.97,
        queue_capacity: 8192,
        panic_on_tuple: None,
        sample_every: streamshed_engine::spans::DEFAULT_SAMPLE_EVERY,
    };
    // Loop config in the controller's units: everything in ms.
    let loop_cfg = LoopConfig::paper_default()
        .with_target_delay_ms(100.0)
        .with_period_ms(50.0)
        .with_prior_cost_us(500.0);
    let strategy = CtrlStrategy::from_config(&loop_cfg);
    println!("strategy: {}", strategy.name());

    let engine = RtEngine::spawn(cfg, strategy);
    println!("phase 1: normal traffic (1000 pkt/s ≈ 52% load) for 1.5 s");
    feed(&engine, 1000.0, 1.5);
    println!("  queue after phase 1: {}", engine.queue_len());

    println!("phase 2: attack burst (6000 pkt/s ≈ 310% load) for 1.5 s");
    feed(&engine, 6000.0, 1.5);
    println!("  queue after burst: {}", engine.queue_len());

    println!("phase 3: back to normal for 1 s");
    feed(&engine, 1000.0, 1.0);

    let report = engine.shutdown();
    println!("\n--- report ---");
    println!("  offered            : {}", report.offered);
    println!("  completed          : {}", report.completed);
    println!("  shed at entry      : {}", report.dropped_entry);
    println!("  shed from queue    : {}", report.dropped_shed);
    println!("  mean delay         : {:.1} ms (target 100 ms)", report.mean_delay_ms);
    println!("  max delay          : {:.1} ms", report.max_delay_ms);
    println!("  deadline misses    : {}", report.delayed_tuples);
    println!("  loss ratio         : {:.1} %", report.loss_ratio() * 100.0);
    println!("  control periods    : {}", report.snapshots.len());

    assert!(
        report.mean_delay_ms < 400.0,
        "the controller must keep delays bounded under the burst"
    );
}

/// Feeds tuples at `rate` packets/s for `secs` seconds.
fn feed(engine: &RtEngine, rate: f64, secs: f64) {
    let gap = Duration::from_secs_f64(1.0 / rate);
    let deadline = std::time::Instant::now() + Duration::from_secs_f64(secs);
    while std::time::Instant::now() < deadline {
        engine.offer();
        std::thread::sleep(gap);
    }
}
