//! Heterogeneous stream priorities (the paper's future-work item).
//!
//! Three tenant streams share one query engine under 2× overload. The
//! ops-critical stream (weight 10) must survive intact; the two
//! best-effort streams absorb the entire cut. The *same* feedback loop
//! decides the total admission budget — only the actuator changes.
//!
//! ```text
//! cargo run --release --example priority_streams
//! ```

use streamshed::prelude::*;

fn main() {
    let duration = 180u64;
    // 380 t/s against the 190 t/s capacity: half must go.
    let times = StepTrace::constant(380.0).arrival_times(duration as f64);
    let arrivals: Vec<SimTime> = to_micros(&times).into_iter().map(SimTime).collect();

    let cfg = LoopConfig::paper_default();

    println!("three streams, 380 t/s total against 190 t/s capacity\n");
    for (label, weights) in [
        ("uniform CTRL (everyone pays)", None),
        ("priority CTRL (10 : 1 : 1)", Some(vec![10.0, 1.0, 1.0])),
    ] {
        let sim = Simulator::new(identification_network(), SimConfig::paper_default());
        let report = match &weights {
            None => {
                let mut s = CtrlStrategy::from_config(&cfg);
                sim.run(&arrivals, &mut s, secs(duration))
            }
            Some(w) => {
                let mut s = PriorityCtrlStrategy::new(&cfg, StreamPriorities::new(w.clone()));
                sim.run(&arrivals, &mut s, secs(duration))
            }
        };
        let per_stream = report.offered as f64 / 3.0;
        println!("--- {label} ---");
        for (i, stat) in report.node_stats.iter().take(3).enumerate() {
            let keep = stat.processed as f64 / per_stream * 100.0;
            println!("  stream {i}: {keep:5.1} % admitted");
        }
        println!(
            "  aggregate: loss {:.1} %, mean delay {:.0} ms (target 2000 ms)\n",
            report.loss_ratio() * 100.0,
            report.delay_stats().mean_ms()
        );
    }
    println!(
        "the delay guarantee is unchanged — priorities only redistribute \
         *which* tuples realise the controller's shed budget."
    );
}
