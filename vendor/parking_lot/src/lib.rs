//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). If a thread panics while
//! holding a lock, the poison flag is cleared on the next access — the
//! same observable behaviour parking_lot has by construction.

use std::sync::TryLockError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the next lock() succeeds.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
