//! Offline stand-in for `criterion`.
//!
//! Implements the group / `bench_function` / `iter` API the workspace's
//! benches use, backed by a deliberately small timing loop: each
//! benchmark runs a short calibration burst, then a fixed number of
//! timed batches, and prints mean time per iteration. No statistics,
//! plots, or baselines — enough to compile `--all-targets` and to give
//! indicative numbers with `cargo bench`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to each benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the batch size chosen by the harness.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(full_name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: grow the batch until one batch takes ≥ ~5 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    // Measure.
    let samples = sample_size.clamp(3, 30);
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let per_iter = if total_iters > 0 {
        total.as_secs_f64() / total_iters as f64
    } else {
        0.0
    };
    println!("{full_name:<60} {:>12.3} ns/iter", per_iter * 1e9);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Records the per-iteration throughput (informational only here).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<N: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b),
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<N: fmt::Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Self {
        Self {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut |b| f(b));
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_bench_runs_closure() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("t");
        group.sample_size(3).throughput(Throughput::Elements(1));
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
