//! Offline stand-in for `serde_json`.
//!
//! Provides an owned [`Value`] tree, a [`json!`] macro for literal
//! construction, and [`to_string_pretty`] — the exact subset the
//! `streamshed-experiments` crate uses to emit figure summaries. Instead
//! of serde's `Serialize`, conversion into `Value` goes through the
//! local [`ToJson`] trait, implemented for the primitive, string,
//! tuple, and container types that appear in summaries.

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; non-finite renders as `null`).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with deterministically ordered keys.
    Object(BTreeMap<String, Value>),
}

/// Error type kept for API compatibility; the stand-in never fails.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Conversion into [`Value`] (the stand-in's replacement for
/// `serde::Serialize`).
pub trait ToJson {
    /// Converts `self` into an owned JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! number_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

number_to_json!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl Value {
    /// Returns the number as `f64` if this is a [`Value::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string slice if this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]` — returns [`Value::Null`] for missing keys or
    /// non-objects, mirroring `serde_json`'s forgiving indexing.
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// Parses a JSON document into a [`Value`] (the stand-in's replacement
/// for `serde_json::from_str`). Accepts the output of [`to_string`] /
/// [`to_string_pretty`] and ordinary hand-written JSON; numbers parse as
/// `f64`.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error); // trailing garbage
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error)
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error),
        Some(b'n') => eat(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => eat(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => eat(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error);
                }
                *pos += 1;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Value::Number),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error);
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(Error)?;
                        let hex = std::str::from_utf8(hex).map_err(|_| Error)?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| Error)?;
                        // Surrogate pairs are not needed for the
                        // workspace's own output; map them to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from a &str, so
                // the boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| Error)?;
                let c = rest.chars().next().ok_or(Error)?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .ok_or(Error)
}

/// Builds a [`Value`] from a JSON-ish literal, mirroring
/// `serde_json::json!` for the object/array/expression shapes used in
/// this workspace.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&$elem) ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert(($key).to_string(), $crate::ToJson::to_json(&$val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::ToJson::to_json(&$other)
    };
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&format_number(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Renders `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Renders `value` as compact JSON.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    fn write_compact(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&format_number(*n)),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(item, out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    write_compact(val, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let summary: Vec<(String, f64)> = vec![("a".to_string(), 1.5)];
        let notes: Vec<String> = vec!["n1".to_string()];
        let v = json!({
            "id": "fig5",
            "summary": summary,
            "notes": notes,
            "count": 3,
        });
        let Value::Object(map) = &v else {
            panic!("expected object")
        };
        assert_eq!(map["id"], Value::String("fig5".to_string()));
        assert_eq!(map["count"], Value::Number(3.0));
    }

    #[test]
    fn pretty_output_is_valid_and_ordered() {
        let v = json!({"b": 2, "a": vec![1.0, 2.5], "s": "x\"y"});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.starts_with('{'));
        // BTreeMap ⇒ keys in sorted order.
        assert!(s.find("\"a\"").unwrap() < s.find("\"b\"").unwrap());
        assert!(s.contains("\\\""));
        assert_eq!(to_string(&json!([1, 2])).unwrap(), "[1,2]");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn from_str_round_trips_own_output() {
        let v = json!({
            "name": "bench \"quoted\"",
            "nested": json!({"speedup": 2.5, "ok": true, "none": Value::Null}),
            "series": vec![1.0, -2.5, 3e6],
        });
        for body in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&body).unwrap(), v);
        }
    }

    #[test]
    fn from_str_parses_hand_written_json() {
        let v = from_str(" { \"a\" : [ 1 , 2.5 ] , \"b\" : { } , \"c\" : \"x\\ny\" } ")
            .unwrap();
        assert_eq!(v["a"], Value::Array(vec![Value::Number(1.0), Value::Number(2.5)]));
        assert_eq!(v["b"], Value::Object(BTreeMap::new()));
        assert_eq!(v["c"].as_str(), Some("x\ny"));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["a"]["nope"], Value::Null);
    }

    #[test]
    fn from_str_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "1 2", "nul", "\"open"] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn value_accessors() {
        assert_eq!(json!(1.5).as_f64(), Some(1.5));
        assert_eq!(json!("s").as_f64(), None);
        assert_eq!(json!("s").as_str(), Some("s"));
        let obj = json!({"k": 7});
        assert_eq!(obj.get("k").and_then(Value::as_f64), Some(7.0));
        assert_eq!(obj.get("x"), None);
        assert_eq!(obj["k"].as_f64(), Some(7.0));
    }
}
