//! Offline stand-in for `serde_json`.
//!
//! Provides an owned [`Value`] tree, a [`json!`] macro for literal
//! construction, and [`to_string_pretty`] — the exact subset the
//! `streamshed-experiments` crate uses to emit figure summaries. Instead
//! of serde's `Serialize`, conversion into `Value` goes through the
//! local [`ToJson`] trait, implemented for the primitive, string,
//! tuple, and container types that appear in summaries.

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; non-finite renders as `null`).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with deterministically ordered keys.
    Object(BTreeMap<String, Value>),
}

/// Error type kept for API compatibility; the stand-in never fails.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stand-in error")
    }
}

impl std::error::Error for Error {}

/// Conversion into [`Value`] (the stand-in's replacement for
/// `serde::Serialize`).
pub trait ToJson {
    /// Converts `self` into an owned JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! number_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

number_to_json!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Builds a [`Value`] from a JSON-ish literal, mirroring
/// `serde_json::json!` for the object/array/expression shapes used in
/// this workspace.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&$elem) ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert(($key).to_string(), $crate::ToJson::to_json(&$val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::ToJson::to_json(&$other)
    };
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&format_number(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Renders `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Renders `value` as compact JSON.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    fn write_compact(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&format_number(*n)),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_compact(item, out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    write_compact(val, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let summary: Vec<(String, f64)> = vec![("a".to_string(), 1.5)];
        let notes: Vec<String> = vec!["n1".to_string()];
        let v = json!({
            "id": "fig5",
            "summary": summary,
            "notes": notes,
            "count": 3,
        });
        let Value::Object(map) = &v else {
            panic!("expected object")
        };
        assert_eq!(map["id"], Value::String("fig5".to_string()));
        assert_eq!(map["count"], Value::Number(3.0));
    }

    #[test]
    fn pretty_output_is_valid_and_ordered() {
        let v = json!({"b": 2, "a": vec![1.0, 2.5], "s": "x\"y"});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.starts_with('{'));
        // BTreeMap ⇒ keys in sorted order.
        assert!(s.find("\"a\"").unwrap() < s.find("\"b\"").unwrap());
        assert!(s.contains("\\\""));
        assert_eq!(to_string(&json!([1, 2])).unwrap(), "[1,2]");
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
