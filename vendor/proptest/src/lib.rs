//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API that the workspace's property
//! tests use: the [`strategy::Strategy`] trait with range / tuple /
//! collection / option / `prop_oneof!` strategies and `prop_map`, the
//! `proptest!` macro with `#![proptest_config(..)]` support, and the
//! `prop_assert*` / `prop_assume!` assertion macros.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports the generated inputs but
//!   does not minimise them.
//! - **Deterministic seeding.** The RNG seed is derived from the test's
//!   module path and name, so every run explores the same cases —
//!   failures reproduce without a regression file.
//! - `.proptest-regressions` files are ignored.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case failed an assertion; the property is violated.
        Fail(String),
        /// The case was rejected by `prop_assume!`; try another input.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic generator handed to strategies.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Derives a stable seed from the test's fully qualified name
        /// (FNV-1a), so each test explores its own fixed case sequence.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Keeps only values satisfying `f` (retries generation; panics
        /// if the predicate is pathologically selective).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason,
                f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.reason)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `branches` (must be non-empty).
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
            Self { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.branches.len());
            self.branches[i].generate(rng)
        }
    }

    /// Coerces a concrete strategy into a boxed one (used by
    /// `prop_oneof!`, where arms have distinct types).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Option`s of `inner` values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` roughly 3/4 of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Namespace mirror so `prop::collection::vec` / `prop::option::of`
/// resolve after a prelude glob import.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub use test_runner::ProptestConfig;

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
}

/// Rejects the current case (input doesn't meet the property's
/// preconditions); the runner draws a replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies that generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        // Callers conventionally parenthesise range arms; the allow keeps
        // that style from tripping `unused_parens` in their crate.
        #[allow(unused_parens)]
        let __branches = vec![$($crate::strategy::boxed($arm)),+];
        $crate::strategy::Union::new(__branches)
    }};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __cfg.cases {
                let __vals = ($($crate::strategy::Strategy::generate(&$strat, &mut __rng),)+);
                let __desc = format!("{:?}", __vals);
                let ($($pat,)+) = __vals;
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                        __reason,
                    )) => {
                        __rejected += 1;
                        if __rejected > __cfg.cases.saturating_mul(64) + 1024 {
                            panic!(
                                "proptest: too many rejected cases ({}), last: {}",
                                __rejected, __reason
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        __reason,
                    )) => {
                        panic!(
                            "proptest case #{} failed: {}\n  inputs: {}",
                            __passed + 1,
                            __reason,
                            __desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper_with_question_mark(xs: &[f64]) -> Result<(), TestCaseError> {
        prop_assert!(xs.iter().all(|x| x.is_finite()), "non-finite input");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.0..5.0f64, n in 3u64..9, i in 0usize..=4) {
            prop_assert!((1.0..5.0).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(i <= 4);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec(0.0..1.0f64, 2..6),
            pair in (0usize..10, 0usize..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            helper_with_question_mark(&v)?;
            prop_assert!(pair.0 < 10 && pair.1 < 10);
        }

        #[test]
        fn oneof_map_option_assume(
            c in prop_oneof![(-1.0..0.0f64), (10.0..11.0f64)],
            doubled in (1u64..100).prop_map(|x| x * 2),
            maybe in prop::option::of(0.0..1.0f64),
        ) {
            prop_assume!(c != 0.5);
            prop_assert!(c < 0.0 || c >= 10.0);
            prop_assert_eq!(doubled % 2, 0);
            if let Some(m) = maybe {
                prop_assert!((0.0..1.0).contains(&m));
            }
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = TestRng::from_name("same-name");
        let mut b = TestRng::from_name("same-name");
        let s = prop::collection::vec(0.0..1.0f64, 3..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(x in 0.0..1.0f64) {
                prop_assert!(x > 2.0, "x was {x}");
            }
        }
        always_fails();
    }
}
