//! No-op derive macros for the vendored `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public structs
//! as forward-looking annotations but never serialises through serde
//! (the only JSON output goes through the `serde_json` stand-in's
//! `ToJson`). These derives therefore emit empty impls of the marker
//! traits so the `#[derive(...)]` attributes keep compiling unchanged.

use proc_macro::{TokenStream, TokenTree};

/// Walks the item's top-level tokens for the `struct`/`enum` keyword and
/// returns the identifier that follows it. Attributes and doc comments
/// arrive as `#` + bracketed groups, so their contents are never
/// mistaken for the keyword.
fn item_name(input: TokenStream) -> Option<String> {
    let mut iter = input.into_iter();
    while let Some(tok) = iter.next() {
        if let TokenTree::Ident(id) = tok {
            let id = id.to_string();
            if id == "struct" || id == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return Some(name.to_string());
                }
                return None;
            }
        }
    }
    None
}

fn impl_marker(input: TokenStream, trait_path: &str, lifetime: Option<&str>) -> TokenStream {
    let Some(name) = item_name(input) else {
        return TokenStream::new();
    };
    // Generic types in this workspace don't derive serde traits; emit a
    // plain impl. If that ever changes the build will fail loudly here.
    let imp = match lifetime {
        Some(lt) => format!("impl<{lt}> {trait_path}<{lt}> for {name} {{}}"),
        None => format!("impl {trait_path} for {name} {{}}"),
    };
    imp.parse().unwrap_or_default()
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_marker(input, "::serde::Serialize", None)
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_marker(input, "::serde::Deserialize", Some("'de"))
}
