//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — an MPMC channel with both bounded and
//! unbounded flavours, cloneable senders *and* receivers (the property
//! the real crossbeam has and `std::sync::mpsc` lacks), blocking and
//! non-blocking operations, and disconnect semantics. Built on
//! `Mutex` + `Condvar`; throughput is adequate for the control-period
//! granularity the workspace uses it at.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        buf: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            // A sender/receiver panicking while holding the lock leaves
            // only consistent state behind (a queued or dequeued item), so
            // poisoning is safe to ignore.
            match self.state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = st.cap.is_some_and(|c| st.buf.len() >= c);
                if !full {
                    st.buf.push_back(msg);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                st = match self.inner.not_full.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Attempts to send without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.inner.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.cap.is_some_and(|c| st.buf.len() >= c) {
                return Err(TrySendError::Full(msg));
            }
            st.buf.push_back(msg);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().buf.len()
        }

        /// Whether the channel is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.lock();
            loop {
                if let Some(msg) = st.buf.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.inner.not_empty.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Attempts to receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.lock();
            if let Some(msg) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.lock();
            loop {
                if let Some(msg) = st.buf.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _timed_out) = match self.inner.not_empty.wait_timeout(st, deadline - now)
                {
                    Ok(r) => r,
                    Err(poisoned) => poisoned.into_inner(),
                };
                st = g;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().buf.len()
        }

        /// Whether the channel is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.lock().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.lock();
            st.senders -= 1;
            if st.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_rejects_at_capacity() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn send_fails_after_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
            assert!(matches!(tx.try_send(8), Err(TrySendError::Disconnected(8))));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u32>();
            let err = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(err, Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            let h = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(99u32).unwrap();
            assert_eq!(h.join().unwrap(), 99);
            drop(rx1);
            // One receiver clone still alive? No — rx2 consumed by thread.
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn blocking_send_unblocks_on_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert!(h.join().unwrap().is_ok());
        }
    }
}
