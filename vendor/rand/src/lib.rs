//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` cannot be fetched. This vendored crate implements the
//! exact API surface the workspace uses — a seeded `StdRng`
//! (xoshiro256++), `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom` — with the same determinism guarantees the
//! simulator relies on (same seed ⇒ same stream). The generated stream
//! is *not* bit-identical to upstream `rand`'s; nothing in the workspace
//! depends on the concrete values, only on determinism and uniformity.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly by `Rng::gen`.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T` (`f64` in `[0, 1)`, full-range
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// `StdRng`; statistically strong, not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A small, fast generator (stand-in for rand's `SmallRng`):
    /// xoshiro256+ — the same state transition as [`StdRng`] with a
    /// cheaper output stage (one add instead of add-rotate-add). The
    /// upper 53 bits are of full quality, which is exactly what float
    /// sampling consumes; like `StdRng` it is deterministic per seed and
    /// not cryptographic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let i = r.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }
}
