//! Offline stand-in for `serde`.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` but never drives an actual serde
//! serialiser — JSON output goes through the `serde_json` stand-in's own
//! conversion trait. `Serialize` and `Deserialize` are therefore plain
//! marker traits, and the derives (re-exported under the `derive`
//! feature) emit empty impls.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
