//! # streamshed
//!
//! A feedback-control load-shedding framework for stream databases,
//! reproducing *"Load Shedding in Stream Databases: A Control-Based
//! Approach"* (Tu, Liu, Prabhakar, Yao — VLDB 2006 line of work).
//!
//! The crate is an umbrella over the workspace members:
//!
//! * [`engine`] — a Borealis-like stream query engine with a virtual-time
//!   simulator and a real-time threaded runner.
//! * [`workload`] — arrival-rate and processing-cost trace generators
//!   (step, sinusoid, Pareto, self-similar web-like).
//! * [`control`] — the paper's contribution: the DSMS delay model, the
//!   virtual-queue delay estimator, the pole-placement feedback
//!   controller, and the `CTRL` / `BASELINE` / `AURORA` shedding
//!   strategies.
//! * [`zdomain`] — discrete-time control mathematics (polynomials,
//!   transfer functions, pole placement).
//! * [`net`] — the network ingestion plane: a zero-copy binary wire
//!   protocol, thread-per-core TCP/HTTP listeners feeding the sharded
//!   engine, and a seeded load-generator fleet.
//! * [`sysid`] — system-identification experiments (model verification).
//! * [`experiments`] — reproduction harness for every figure in the
//!   paper.
//!
//! ## Quickstart
//!
//! ```
//! use streamshed::prelude::*;
//!
//! // The paper's 14-operator identification network (§4.2), calibrated
//! // to a processing capacity of 190 tuples/s at headroom H = 0.97.
//! let network = identification_network();
//!
//! // A bursty Pareto workload: 60 s at ~300 tuples/s mean — sustained
//! // overload against the 190 t/s capacity.
//! let trace = ParetoTrace::builder()
//!     .mean_rate(300.0)
//!     .bias(1.0)
//!     .seed(42)
//!     .build();
//! let arrivals: Vec<SimTime> = to_micros(&trace.arrival_times(60.0))
//!     .into_iter()
//!     .map(SimTime)
//!     .collect();
//!
//! // Feedback-control shedding: target delay 2 s, control period 1 s.
//! let mut strategy = CtrlStrategy::from_config(&LoopConfig::paper_default());
//!
//! let sim = Simulator::new(network, SimConfig::paper_default());
//! let report = sim.run(&arrivals, &mut strategy, secs(60));
//!
//! // The controller keeps the average delay near the 2 s target while
//! // shedding roughly the overload fraction (1 − 190/300 ≈ 37%).
//! assert!(report.delay_stats().mean_ms() < 3500.0);
//! assert!(report.loss_ratio() > 0.2 && report.loss_ratio() < 0.55);
//! ```

pub use streamshed_control as control;
pub use streamshed_engine as engine;
pub use streamshed_experiments as experiments;
pub use streamshed_net as net;
pub use streamshed_sysid as sysid;
pub use streamshed_workload as workload;
pub use streamshed_zdomain as zdomain;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use streamshed_control::{
        adaptive::{AdaptiveCtrlStrategy, RlsEstimator},
        controller::FeedbackController,
        estimator::{CostEstimator, DelayEstimator},
        kalman::{CostTracker, CostTrackerKind, KalmanCostEstimator},
        loop_::{LoopConfig, ShedMode},
        model::PlantModel,
        priority::{PriorityCtrlStrategy, StreamPriorities},
        strategy::{AuroraStrategy, BaselineStrategy, CtrlStrategy, SheddingStrategy},
        supervisor::{Supervisor, SupervisorConfig, SupervisorMode},
    };
    pub use streamshed_engine::{
        faults::{FaultKind, FaultPlan, FaultWindow, FaultyHook},
        hook::{ControlHook, Decision, NoShedding, PeriodSnapshot},
        metrics::{DelayStats, RunReport},
        network::{NetworkBuilder, QueryNetwork},
        networks::{identification_network, monitoring_network, uniform_chain},
        sim::{SimConfig, Simulator},
        time::{micros, millis, secs, SimDuration, SimTime},
        tuple::Tuple,
    };
    pub use streamshed_workload::{
        to_micros, ArrivalTrace, CostTrace, ParetoTrace, SineTrace, StepTrace, WebLikeTrace,
    };
    pub use streamshed_zdomain::design::{
        design_for_integrator, ControllerParams, DesignSpec,
    };
}
